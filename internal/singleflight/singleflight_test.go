package singleflight

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoDeduplicates: N concurrent callers on one key run fn exactly
// once, and everyone sees the same value.
func TestDoDeduplicates(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int32
	gate := make(chan struct{})

	const workers = 16
	var wg sync.WaitGroup
	vals := make([]int, workers)
	errs := make([]error, workers)
	started := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			started <- struct{}{}
			vals[w], errs[w], _ = g.Do(context.Background(), "k", func(context.Context) (int, error) {
				<-gate // hold the flight open until all workers joined
				return int(calls.Add(1)), nil
			})
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-started
	}
	// Every worker has signaled; give the scheduler a moment so they all
	// block inside Do (between the signal and Do there is straight-line
	// code only) while the first holds the flight open at the gate. Then
	// releasing the gate lets the one shared call finish.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if vals[w] != 1 {
			t.Errorf("worker %d got %d, want 1", w, vals[w])
		}
	}
}

// TestWaiterCancellationDoesNotAbortCall: a waiter whose ctx is
// canceled unblocks with ctx.Err() while the shared call keeps running
// and delivers its result to the patient waiter.
func TestWaiterCancellationDoesNotAbortCall(t *testing.T) {
	var g Group[string, string]
	release := make(chan struct{})
	inFn := make(chan struct{})
	var fnCtxErr error
	var mu sync.Mutex

	// Patient caller starts the flight.
	type res struct {
		v   string
		err error
	}
	patient := make(chan res, 1)
	go func() {
		v, err, _ := g.Do(context.Background(), "k", func(ctx context.Context) (string, error) {
			close(inFn)
			<-release
			mu.Lock()
			fnCtxErr = ctx.Err()
			mu.Unlock()
			return "built", nil
		})
		patient <- res{v, err}
	}()
	<-inFn

	// Impatient waiter joins, then its context is canceled.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err, shared := g.Do(ctx, "k", func(context.Context) (string, error) {
		t.Error("second fn must not run")
		return "", nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("impatient waiter got %v, want context.Canceled", err)
	}
	if !shared {
		t.Error("impatient waiter should report shared")
	}

	// The build was not aborted by the waiter's cancellation.
	close(release)
	r := <-patient
	if r.err != nil || r.v != "built" {
		t.Fatalf("patient waiter got (%q, %v), want (built, nil)", r.v, r.err)
	}
	mu.Lock()
	defer mu.Unlock()
	if fnCtxErr != nil {
		t.Errorf("fn observed ctx error %v; its context must be detached from waiters", fnCtxErr)
	}
}

// TestCallerCancellationDetached: even the *initiating* caller's
// cancellation does not cancel fn's context.
func TestCallerCancellationDetached(t *testing.T) {
	var g Group[string, int]
	ctx, cancel := context.WithCancel(context.Background())
	inFn := make(chan struct{})
	release := make(chan struct{})
	fnErr := make(chan error, 1)
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(ctx, "k", func(fctx context.Context) (int, error) {
			close(inFn)
			<-release // outlive the initiator's cancellation
			fnErr <- fctx.Err()
			return 42, nil
		})
		done <- err
	}()
	<-inFn
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled initiator got %v, want context.Canceled", err)
	}
	close(release)
	if err := <-fnErr; err != nil {
		t.Errorf("fn observed ctx error %v after initiator canceled; must be detached", err)
	}
	// The flight eventually drains (fn finished without a ctx error and
	// the key is forgotten).
	deadline := time.After(2 * time.Second)
	for g.InFlight("k") {
		select {
		case <-deadline:
			t.Fatal("flight never drained")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestErrorsPropagateAndAreNotCached: an error reaches every concurrent
// waiter, but the next Do after completion retries fresh.
func TestErrorsPropagateAndAreNotCached(t *testing.T) {
	var g Group[int, int]
	boom := errors.New("boom")
	attempt := 0
	_, err, _ := g.Do(context.Background(), 7, func(context.Context) (int, error) {
		attempt++
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	v, err, _ := g.Do(context.Background(), 7, func(context.Context) (int, error) {
		attempt++
		return attempt, nil
	})
	if err != nil || v != 2 {
		t.Fatalf("retry got (%d, %v), want (2, nil)", v, err)
	}
}

// TestDistinctKeysRunIndependently: different keys never share a call.
func TestDistinctKeysRunIndependently(t *testing.T) {
	var g Group[int, int]
	var wg sync.WaitGroup
	var calls atomic.Int32
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			v, err, _ := g.Do(context.Background(), k, func(context.Context) (int, error) {
				calls.Add(1)
				return k * 10, nil
			})
			if err != nil || v != k*10 {
				t.Errorf("key %d got (%d, %v)", k, v, err)
			}
		}(k)
	}
	wg.Wait()
	if calls.Load() != 8 {
		t.Errorf("ran %d calls, want 8", calls.Load())
	}
}

// TestBaseCancellationCancelsCall: a Group with a Base lifecycle
// context keeps ignoring waiter cancellation, but canceling Base (owner
// shutdown) cancels the in-flight call's context.
func TestBaseCancellationCancelsCall(t *testing.T) {
	base, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	var g Group[string, int]
	g.Base = base

	inFn := make(chan struct{})
	callErr := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(context.Background(), "k", func(ctx context.Context) (int, error) {
			close(inFn)
			<-ctx.Done()
			return 0, ctx.Err()
		})
		callErr <- err
	}()
	<-inFn

	// A waiter hanging up still must not cancel the call.
	wctx, wcancel := context.WithCancel(context.Background())
	wcancel()
	if _, err, shared := g.Do(wctx, "k", func(context.Context) (int, error) {
		t.Error("second fn must not run")
		return 0, nil
	}); !errors.Is(err, context.Canceled) || !shared {
		t.Fatalf("canceled waiter got (err=%v, shared=%v), want (context.Canceled, true)", err, shared)
	}
	select {
	case err := <-callErr:
		t.Fatalf("call ended after a waiter hung up: %v — only Base may cancel it", err)
	case <-time.After(20 * time.Millisecond):
	}

	// Base cancellation is the one signal that reaches the call.
	cancelBase()
	select {
	case err := <-callErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("call after Base cancellation returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call never observed Base cancellation")
	}
}

// TestPanicBecomesError: a panicking fn is converted into an error for
// every waiter instead of crashing the process or wedging the flight,
// and the error carries the panic's stack trace so the bug stays
// attributable from logs.
func TestPanicBecomesError(t *testing.T) {
	var g Group[string, int]
	_, err, _ := g.Do(context.Background(), "k", func(context.Context) (int, error) {
		panic("kaboom")
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("got %v, want panic error mentioning kaboom", err)
	}
	if !strings.Contains(err.Error(), "goroutine") || !strings.Contains(err.Error(), "singleflight") {
		t.Fatalf("panic error lacks a stack trace: %v", err)
	}
	// The key is usable again.
	v, err, _ := g.Do(context.Background(), "k", func(context.Context) (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("post-panic Do got (%d, %v)", v, err)
	}
}

// TestStatsCountLeadersAndWaits: the lifetime counters distinguish the
// caller that executed fn from the callers deduplicated onto it, and
// count recovered panics — the seam the observability layer exports as
// the singleflight dedup ratio.
func TestStatsCountLeadersAndWaits(t *testing.T) {
	var g Group[string, int]
	gate := make(chan struct{})
	leaderIn := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = g.Do(context.Background(), "k", func(context.Context) (int, error) {
			close(leaderIn)
			<-gate
			return 1, nil
		})
	}()
	<-leaderIn // fn is running: the flight slot is occupied

	const joiners = 3
	for w := 0; w < joiners; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _ = g.Do(context.Background(), "k", func(context.Context) (int, error) {
				t.Error("joiner executed fn despite an in-flight call")
				return 0, nil
			})
		}()
	}
	// Joiners increment dedupedWaits before blocking on the call; poll
	// until all three have registered, then release the leader.
	for deadline := time.Now().Add(5 * time.Second); g.Stats().DedupedWaits < joiners; {
		if time.Now().After(deadline) {
			t.Fatalf("joiners never registered: %+v", g.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	st := g.Stats()
	if st.Leaders != 1 || st.DedupedWaits != joiners {
		t.Errorf("stats = %+v, want 1 leader and %d deduped waits", st, joiners)
	}
	if st.Panics != 0 {
		t.Errorf("panics = %d, want 0", st.Panics)
	}

	// A panicking call is counted.
	_, err, _ := g.Do(context.Background(), "p", func(context.Context) (int, error) {
		panic("boom")
	})
	if err == nil {
		t.Fatal("panicking call returned nil error")
	}
	if st := g.Stats(); st.Panics != 1 || st.Leaders != 2 {
		t.Errorf("stats after panic = %+v, want Panics=1 Leaders=2", st)
	}
}
