// Package singleflight deduplicates concurrent function calls by key:
// when N goroutines ask for the same key at once, exactly one executes
// the function and all N receive its result. The engine uses it for
// summary materialization, where the paper's offline summarization
// (§3–4) is the expensive step a thundering herd of cache misses must
// not repeat.
//
// Unlike golang.org/x/sync/singleflight (not vendored here — the repo
// builds offline), this implementation is context-aware on the waiter
// side: the shared call runs on a context detached from every waiter's
// cancellation, so one canceled request cannot abort a build that other
// requests — or the cache — still want. A waiter whose own ctx ends
// before the shared call completes unblocks immediately with ctx.Err();
// the call keeps running and its result still reaches the remaining
// waiters. The call is not immortal, though: a Group may carry a Base
// lifecycle context, and canceling Base (owner shutdown) cancels every
// in-flight call — the one cancellation signal that outranks the
// waiters.
package singleflight

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// call is one in-flight (or completed) execution.
type call[V any] struct {
	done chan struct{} // closed when val/err are set
	val  V
	err  error
}

// Group deduplicates concurrent Do calls by key. The zero value is
// ready to use. A Group must not be copied after first use.
type Group[K comparable, V any] struct {
	// Base, when non-nil, bounds the lifetime of every shared call:
	// the call's context still carries the initiating waiter's values
	// (trace IDs etc.) and still ignores the waiters' cancellation, but
	// it is canceled when Base is canceled — the owner-shutdown escape
	// hatch, without which a burst of distinct-key misses could pile up
	// unstoppable detached work. Nil means calls are fully detached and
	// run to completion no matter what. Set Base before the first Do
	// and do not change it afterwards.
	Base context.Context

	mu     sync.Mutex
	flight map[K]*call[V]

	// Lifetime counters (atomic; read via Stats). leaders counts Do
	// calls that launched fn; dedupedWaits counts Do calls that joined
	// an already-in-flight execution instead — the dedup ratio
	// dedupedWaits / (leaders + dedupedWaits) is the metric the
	// observability layer exports. panics counts recovered fn panics.
	leaders      atomic.Uint64
	dedupedWaits atomic.Uint64
	panics       atomic.Uint64
}

// Stats is a snapshot of a Group's lifetime counters.
type Stats struct {
	// Leaders is how many Do calls executed fn themselves.
	Leaders uint64
	// DedupedWaits is how many Do calls were deduplicated onto another
	// caller's in-flight execution.
	DedupedWaits uint64
	// Panics is how many fn executions panicked (each was recovered and
	// delivered to its waiters as an error).
	Panics uint64
}

// Stats returns a point-in-time snapshot of the group's counters. The
// three fields are loaded independently, so a snapshot taken mid-Do may
// be off by one between them — fine for metrics, not for invariants.
func (g *Group[K, V]) Stats() Stats {
	return Stats{
		Leaders:      g.leaders.Load(),
		DedupedWaits: g.dedupedWaits.Load(),
		Panics:       g.panics.Load(),
	}
}

// Do executes fn for key, deduplicating concurrent callers: while a
// call for key is in flight, later Do calls wait for it instead of
// launching their own. shared reports whether the returned value came
// from a call this goroutine did not itself start.
//
// fn runs in its own goroutine on a context derived from ctx by
// context.WithoutCancel — values (trace IDs etc.) flow through, the
// waiters' cancellation does not, so a waiter hanging up never kills
// work other waiters depend on. The only cancellation fn can observe
// is the Group's Base lifecycle context (owner shutdown); with a nil
// Base it never observes a deadline at all. When the caller's ctx ends
// before fn completes, Do returns ctx.Err() for that caller while fn
// keeps running to completion for the others.
//
// A panic inside fn is recovered and delivered to every waiter as an
// error carrying the panic value and its stack trace, so the bug is
// attributable from logs rather than masked as a transient failure.
//
// Results are not cached: once fn returns and every waiter is released,
// the key is forgotten. Pair Do with an external cache checked first
// (and re-checked inside fn) for read-through behavior.
func (g *Group[K, V]) Do(ctx context.Context, key K, fn func(context.Context) (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if g.flight == nil {
		g.flight = make(map[K]*call[V])
	}
	if c, ok := g.flight[key]; ok {
		g.mu.Unlock()
		g.dedupedWaits.Add(1)
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return v, ctx.Err(), true
		}
	}
	c := &call[V]{done: make(chan struct{})}
	g.flight[key] = c
	g.mu.Unlock()
	g.leaders.Add(1)

	go func() {
		defer func() {
			if p := recover(); p != nil {
				g.panics.Add(1)
				c.err = fmt.Errorf("singleflight: call panicked: %v\n%s", p, debug.Stack())
			}
			g.mu.Lock()
			delete(g.flight, key)
			g.mu.Unlock()
			close(c.done)
		}()
		fctx := context.WithoutCancel(ctx) // waiter values, no waiter cancellation
		if g.Base != nil {
			var cancel context.CancelFunc
			fctx, cancel = context.WithCancel(fctx)
			defer cancel()
			stop := context.AfterFunc(g.Base, cancel)
			defer stop()
		}
		c.val, c.err = fn(fctx)
	}()

	select {
	case <-c.done:
		return c.val, c.err, false
	case <-ctx.Done():
		return v, ctx.Err(), false
	}
}

// InFlight reports whether a call for key is currently executing —
// a test/metrics helper, inherently racy as a synchronization primitive.
func (g *Group[K, V]) InFlight(key K) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.flight[key]
	return ok
}
