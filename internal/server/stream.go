package server

// Streaming routes: /updates feeds the stream.Pipeline, /subscribe
// serves standing queries over SSE. Both mount only when Config.Stream
// (and, for /subscribe, Config.Subscriptions) is set — a static-index
// deployment keeps its exact pre-streaming surface.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/subscribe"
)

// maxUpdateBody bounds a POST /updates payload (1 MiB ≈ 20k events) so
// a hostile client cannot balloon the decoder.
const maxUpdateBody = 1 << 20

// sseWriteTimeout bounds each individual SSE write; a client that stops
// reading for this long is disconnected at the next push or heartbeat.
const sseWriteTimeout = 10 * time.Second

// UpdateEvent is one JSON edge event: weight > 0 upserts from→to,
// weight = 0 deletes it.
type UpdateEvent struct {
	From   int32   `json:"from"`
	To     int32   `json:"to"`
	Weight float64 `json:"weight"`
}

// UpdateRequest is the POST /updates payload.
type UpdateRequest struct {
	Updates []UpdateEvent `json:"updates"`
	// NewNodes appends fresh user IDs after the current maximum; the
	// Updates in the same request may reference them already.
	NewNodes int `json:"new_nodes"`
}

// UpdateResponse acknowledges accepted events. Application is
// asynchronous: Pending and Swaps let a client observe the batch get
// picked up.
type UpdateResponse struct {
	Accepted int    `json:"accepted"`
	NewNodes int    `json:"new_nodes,omitempty"`
	Pending  int    `json:"pending"`
	Swaps    uint64 `json:"swaps"`
}

// SubscribePush is the JSON payload of one SSE "topk" event: the
// standing query's fresh top-k after batch Seq (0 = the initial answer).
type SubscribePush struct {
	Seq     uint64         `json:"seq"`
	Results []SearchResult `json:"results"`
}

func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if !s.requireReady(w, r) {
		return
	}
	var req UpdateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUpdateBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeErr(w, r, http.StatusBadRequest, "bad update payload: %v", err)
		return
	}
	if req.NewNodes < 0 {
		s.writeErr(w, r, http.StatusBadRequest, "negative new_nodes")
		return
	}
	if len(req.Updates) == 0 && req.NewNodes == 0 {
		s.writeErr(w, r, http.StatusBadRequest, "empty update: no events, no new nodes")
		return
	}
	p := s.cfg.Stream
	if req.NewNodes > 0 {
		if err := p.GrowNodes(req.NewNodes); err != nil {
			s.failUpdate(w, r, err)
			return
		}
	}
	if len(req.Updates) > 0 {
		evs := make([]stream.Event, len(req.Updates))
		for i, u := range req.Updates {
			evs[i] = stream.Event{From: graph.NodeID(u.From), To: graph.NodeID(u.To), Weight: u.Weight}
		}
		if err := p.Submit(evs...); err != nil {
			s.failUpdate(w, r, err)
			return
		}
	}
	s.writeJSON(w, r, http.StatusAccepted, UpdateResponse{
		Accepted: len(req.Updates),
		NewNodes: req.NewNodes,
		Pending:  p.PendingEvents(),
		Swaps:    p.Swaps(),
	})
}

// failUpdate maps a rejected submission: 503 when the pipeline is
// stopped (shutdown), 400 for event validation.
func (s *Server) failUpdate(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, context.Canceled) {
		w.Header().Set("Retry-After", "5")
		s.writeErr(w, r, http.StatusServiceUnavailable, "update pipeline stopped")
		return
	}
	s.writeErr(w, r, http.StatusBadRequest, "rejected: %v", err)
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if !s.requireReady(w, r) {
		return
	}
	// Own concurrency bound instead of MaxInflight: a subscription
	// parks for its whole lifetime and would otherwise starve the
	// short-request limiter.
	select {
	case s.subscribers <- struct{}{}:
		defer func() { <-s.subscribers }()
	default:
		s.met.shed.Inc()
		w.Header().Set("Retry-After", "1")
		s.writeErr(w, r, http.StatusTooManyRequests, "subscriber capacity reached (%d streams)", s.cfg.MaxSubscribers)
		return
	}
	p, ok := s.parseSearchParams(w, r)
	if !ok {
		return
	}
	sub, err := s.cfg.Subscriptions.Subscribe(r.Context(), s.engine(), subscribe.Query{
		Method: p.method, Q: p.q, User: p.user, K: p.k, Lambda: p.lambda,
	})
	if err != nil {
		switch {
		case errors.Is(err, core.ErrNotReady):
			w.Header().Set("Retry-After", "5")
			s.writeErr(w, r, http.StatusServiceUnavailable, "engine unavailable: %v", err)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			s.writeErr(w, r, statusClientClosedRequest, "client closed request")
		default:
			s.writeErr(w, r, http.StatusBadRequest, "subscribe rejected: %v", err)
		}
		return
	}
	defer s.cfg.Subscriptions.Unsubscribe(sub.ID())

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	// The listener-level write deadline (pitserve sets WriteTimeout)
	// would sever the stream at a fixed wall-clock point; replace it
	// with a rolling per-write deadline so only a stalled client is cut.
	writeEvent := func(format string, args ...interface{}) error {
		_ = rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout))
		if _, err := fmt.Fprintf(w, format, args...); err != nil {
			return err
		}
		return rc.Flush()
	}

	hb := time.NewTicker(s.cfg.SubscribeHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case push := <-sub.C():
			payload, err := json.Marshal(SubscribePush{Seq: push.Seq, Results: searchRows(push.Results)})
			if err != nil {
				s.cfg.Logger.Printf("%s encode push: %v", RequestID(r.Context()), err)
				return
			}
			if err := writeEvent("event: topk\ndata: %s\n\n", payload); err != nil {
				return
			}
		case <-hb.C:
			// Comment line: keeps intermediaries from idling the
			// connection out and detects gone clients between pushes.
			if err := writeEvent(": hb\n\n"); err != nil {
				return
			}
		}
	}
}
