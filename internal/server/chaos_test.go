package server

// Chaos suite (run under -race via `make chaos`): drives the full HTTP
// stack against an internal/chaos summarizer and checks the fidelity
// planner's headline claims end to end —
//
//   - under sustained 30% injected build failure every request is
//     answered 200 from some tier, with zero unplanned 5xx;
//   - the advertised tier (X-Pit-Tier header and body field) always
//     matches the tier counter the server recorded;
//   - a permanent outage trips the build breaker, breaker-open requests
//     never reach the summarizer, and after the outage heals a half-open
//     probe closes the breaker and full fidelity returns;
//   - closing the engine after a chaotic run leaks no goroutines.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/summary"
	"repro/internal/topics"
)

// chaosHarness builds an instrumented engine + server pair whose
// summarizer is a chaos wrapper around the topic summaries the real
// LRW-A backend produced. All topics start warm; tests invalidate what
// they want rebuilt through the fault regime.
func chaosHarness(t *testing.T, pcfg plan.Config, ccfg chaos.Config) (*Server, *core.Engine, *chaos.Summarizer, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	g, err := dataset.GenerateGraph(dataset.GraphConfig{
		Nodes: 200, MinOutDegree: 2, MaxOutDegree: 6, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	space, err := dataset.GenerateTopics(g, dataset.TopicConfig{
		Tags: 1, TopicsPerTag: faultTopics, MeanTopicNodes: 12, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(g, space, core.Options{
		WalkL: 3, WalkR: 4, Seed: 7, Metrics: reg, Plan: pcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndexes(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)

	// Materialize every topic once through the real backend and keep the
	// results: the chaos wrapper's inner summarizer replays them, so a
	// surviving call always yields a correct summary.
	real := make(map[topics.TopicID]summary.Summary, faultTopics)
	for i := 0; i < faultTopics; i++ {
		s, err := eng.Summarize(context.Background(), core.MethodLRW, topics.TopicID(i))
		if err != nil {
			t.Fatal(err)
		}
		real[topics.TopicID(i)] = s
	}
	cs := chaos.Wrap(chaos.SummarizeFunc(func(_ context.Context, id topics.TopicID) (summary.Summary, error) {
		return real[id], nil
	}), ccfg)
	eng.SetSummarizer(core.MethodLRW, cs)

	srv, err := New(eng, Config{Logger: testLogger(t), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return srv, eng, cs, reg
}

// chaosGet performs one /search and returns status, advertised tier
// (header) and decoded body.
func chaosGet(t *testing.T, srv *Server, target string) (int, string, SearchResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	var resp SearchResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decode %s: %v: %s", target, err, rec.Body)
		}
	}
	return rec.Code, rec.Header().Get(tierHeader), resp
}

// TestChaosSteadyServiceUnderTransientFailure: 300 requests against a
// summarizer failing 30% of injected builds. Topics 0..2 stay warm
// (injection targets only 3..5, which are invalidated before every
// request so each request really rebuilds through the fault regime).
// Every request must be answered 200 from the full or materialized tier,
// the advertised tier must match the body, the per-tier counters must
// account for every request, and no 5xx of any kind may be recorded.
func TestChaosSteadyServiceUnderTransientFailure(t *testing.T) {
	srv, eng, cs, _ := chaosHarness(t, plan.Config{}, chaos.Config{
		FailRate: 0.3,
		Target:   func(id topics.TopicID) bool { return id >= 3 },
	})

	const requests = 300
	served := map[string]int{}
	for i := 0; i < requests; i++ {
		for id := topics.TopicID(3); id < faultTopics; id++ {
			eng.InvalidateTopic(id)
		}
		code, headerTier, resp := chaosGet(t, srv, "/search?q=tag000&user=3&k=6")
		if code != http.StatusOK {
			t.Fatalf("request %d = %d, want 200 (unplanned non-200 under transient chaos)", i, code)
		}
		if headerTier != resp.Tier {
			t.Fatalf("request %d: X-Pit-Tier %q != body tier %q", i, headerTier, resp.Tier)
		}
		if resp.Tier != "full" && resp.Tier != "materialized" {
			t.Fatalf("request %d served from unexpected tier %q", i, resp.Tier)
		}
		if resp.Tier == "materialized" && !resp.Degraded {
			t.Fatalf("request %d: materialized answer not marked degraded", i)
		}
		served[resp.Tier]++
	}

	if served["full"] == 0 || served["materialized"] == 0 {
		t.Errorf("tier mix = %v, want both full and materialized exercised", served)
	}
	st := cs.Stats()
	if st.Failures == 0 {
		t.Error("chaos injected no failures — the sweep proved nothing")
	}
	// The server's tier counters must account for exactly the planned
	// requests, and agree with what the client saw.
	var sum uint64
	for _, tier := range plan.Tiers {
		sum += srv.met.tiers[tier].Value()
	}
	if sum != requests {
		t.Errorf("tier counters sum = %d, want %d", sum, requests)
	}
	if got := srv.met.tiers[plan.TierFull].Value(); got != uint64(served["full"]) {
		t.Errorf("full-tier counter = %d, client saw %d", got, served["full"])
	}
	for _, code := range []string{"500", "502", "503", "504"} {
		if got := srv.met.requests.With("/search", code).Value(); got != 0 {
			t.Errorf(`requests{route="/search",code=%q} = %d, want 0`, code, got)
		}
	}
	if got := srv.met.panics.Value(); got != 0 {
		t.Errorf("handler panic counter = %d, want 0", got)
	}
}

// TestChaosBreakerTripsAndRecovers: a permanent outage with nothing
// cached trips the per-method breaker; while open, planned requests are
// refused without touching the summarizer (no hammering a dead backend);
// after the outage heals, a half-open probe closes the breaker and full
// fidelity returns.
func TestChaosBreakerTripsAndRecovers(t *testing.T) {
	srv, eng, cs, reg := chaosHarness(t, plan.Config{
		Breaker: plan.BreakerConfig{
			Threshold:   2,
			Cooldown:    20 * time.Millisecond,
			MaxCooldown: 40 * time.Millisecond,
			Jitter:      0.01,
		},
	}, chaos.Config{PermanentOutage: true})

	for i := 0; i < faultTopics; i++ {
		eng.InvalidateTopic(topics.TopicID(i))
	}

	// Drive requests until the outage has tripped the breaker. Each
	// request's build fan-out records failures, so this takes one or two.
	deadline := time.Now().Add(2 * time.Second)
	for eng.BreakerState(core.MethodLRW) != plan.Open {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened; state = %v", eng.BreakerState(core.MethodLRW))
		}
		code, headerTier, _ := chaosGet(t, srv, "/search?q=tag000&user=3&k=6")
		if code != http.StatusServiceUnavailable {
			t.Fatalf("outage request = %d, want 503", code)
		}
		if headerTier != "unavailable" {
			t.Fatalf("outage X-Pit-Tier = %q, want unavailable", headerTier)
		}
	}

	// Breaker open: planned requests stop at the materialized tier and
	// must not reach the (dead) summarizer at all.
	callsWhenOpen := cs.Stats().Calls
	if code, _, _ := chaosGet(t, srv, "/search?q=tag000&user=3&k=6"); code != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open request = %d, want 503", code)
	}
	if got := cs.Stats().Calls; got != callsWhenOpen {
		t.Errorf("breaker-open request reached the summarizer (%d calls, was %d)", got, callsWhenOpen)
	}

	// Heal the outage; after the cooldown a half-open probe build succeeds,
	// the breaker closes, and the ladder serves full fidelity again.
	cs.SetConfig(chaos.Config{})
	deadline = time.Now().Add(2 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		code, _, resp := chaosGet(t, srv, "/search?q=tag000&user=3&k=6")
		if code == http.StatusOK && resp.Tier == "full" {
			recovered = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("service never recovered to full tier after outage healed")
	}
	if got := eng.BreakerState(core.MethodLRW); got != plan.Closed {
		t.Errorf("breaker state after recovery = %v, want closed", got)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	for _, family := range []string{
		"pit_breaker_trips_total", "pit_breaker_state",
		"pit_summary_builds_suspended_total", "pit_search_tier_total",
	} {
		if !strings.Contains(exp, family) {
			t.Errorf("exposition missing %s", family)
		}
	}
	if !strings.Contains(exp, `pit_breaker_state{method="lrw"} 0`) {
		t.Errorf("breaker gauge not back to closed (0) in exposition:\n%s",
			grepLines(exp, "pit_breaker_state"))
	}
}

// TestChaosShutdownNoGoroutineLeak: a chaotic run that exercises the
// detached paths (stale serves with background revalidation, injected
// latency raced against deadlines) must not leak goroutines once the
// engine is closed — Close cancels the lifecycle and waits for every
// revalidation worker.
func TestChaosShutdownNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srv, eng, cs, _ := chaosHarness(t, plan.Config{}, chaos.Config{})

	// Seed the stale cache with a last-known-good answer via a clean
	// full-tier request, then break every rebuild.
	if code, _, resp := chaosGet(t, srv, "/search?q=tag000&user=3&k=6"); code != http.StatusOK || resp.Tier != "full" {
		t.Fatalf("seed request = %d tier %q, want 200 full", code, resp.Tier)
	}
	cs.SetConfig(chaos.Config{PermanentOutage: true, Latency: 2 * time.Millisecond})

	for i := 0; i < 50; i++ {
		for id := topics.TopicID(0); id < faultTopics; id++ {
			eng.InvalidateTopic(id)
		}
		code, headerTier, resp := chaosGet(t, srv, "/search?q=tag000&user=3&k=6")
		if code != http.StatusOK || resp.Tier != "stale" {
			t.Fatalf("request %d under outage = %d tier %q, want 200 stale", i, code, resp.Tier)
		}
		if headerTier != resp.Tier {
			t.Fatalf("request %d: X-Pit-Tier %q != body tier %q", i, headerTier, resp.Tier)
		}
	}
	if got := srv.met.degraded.Value(); got == 0 {
		t.Error("stale serves did not count as degraded")
	}

	eng.Close() // idempotent with the t.Cleanup close

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines after Close = %d, baseline %d; dump:\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// grepLines returns the lines of s containing substr, for focused test
// failure output.
func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
