package server

// Tests for the serving-path observability wiring and the two serving
// bugfixes that ride with it:
//
//   - statusRecorder must forward http.Flusher / http.ResponseController
//     through the middleware stack (it used to swallow both, breaking
//     streaming and flush-dependent handlers);
//   - a diversified (lambda > 0) search that degrades on deadline must
//     keep its lambda re-rank instead of silently falling back to the
//     plain influence ranking;
//   - the middleware counters (requests, latency, shed, panic, degraded,
//     client-closed) must record each failure mode.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/summary"
	"repro/internal/topics"
)

// obsServer is faultServer with an explicit registry so tests can both
// read the counters and assert on the exposition.
func obsServer(t *testing.T, eng *core.Engine, cfg Config) (*Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Registry = reg
	return faultServer(t, eng, cfg), reg
}

// TestFlushForwardedThroughMiddleware is the regression test for the
// lost-Flush bug: a handler streaming through the full middleware stack
// must reach the connection's Flusher, both by direct type assertion and
// via http.ResponseController. Before the fix, statusRecorder embedded
// only http.ResponseWriter, so the assertion failed and
// ResponseController returned ErrNotSupported.
func TestFlushForwardedThroughMiddleware(t *testing.T) {
	eng := faultEngine(t)
	srv, _ := obsServer(t, eng, Config{MaxInflight: 4, RequestTimeout: time.Second})

	flushedMidHandler := false
	rec := httptest.NewRecorder()
	var h http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("ResponseWriter lost http.Flusher through the middleware stack")
		}
		io.WriteString(w, "chunk1\n")
		f.Flush()
		flushedMidHandler = rec.Flushed
		if err := http.NewResponseController(w).Flush(); err != nil {
			t.Errorf("ResponseController.Flush through middleware: %v", err)
		}
		io.WriteString(w, "chunk2\n")
	})
	// The exact stack Handler() builds, around a streaming handler.
	h = srv.withTimeout(h)
	h = srv.withLimit(h)
	h = srv.withRecovery(h)
	h = srv.withAccessLog(h)
	h = srv.withRequestID(h)

	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search", nil))
	if !flushedMidHandler {
		t.Error("Flush did not reach the underlying writer while the handler was streaming")
	}
	if body := rec.Body.String(); body != "chunk1\nchunk2\n" {
		t.Errorf("streamed body = %q", body)
	}
	if rec.Code != http.StatusOK {
		t.Errorf("streamed response = %d, want 200", rec.Code)
	}
}

// TestRequestMetricsRecorded: a served request lands in the per-route
// counter and latency histogram, and the exposition carries the HTTP
// families.
func TestRequestMetricsRecorded(t *testing.T) {
	eng := faultEngine(t)
	srv, reg := obsServer(t, eng, Config{})

	if rec := probe(t, srv, "/search?q=tag000&user=3&k=2"); rec.Code != http.StatusOK {
		t.Fatalf("search = %d: %s", rec.Code, rec.Body)
	}
	if rec := probe(t, srv, "/nosuch"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown route = %d, want 404", rec.Code)
	}

	if got := srv.met.requests.With("/search", "200").Value(); got != 1 {
		t.Errorf(`requests{route="/search",code="200"} = %d, want 1`, got)
	}
	if got := srv.met.requests.With("other", "404").Value(); got != 1 {
		t.Errorf(`requests{route="other",code="404"} = %d, want 1`, got)
	}
	if got := srv.met.latency.With("/search").Count(); got != 1 {
		t.Errorf("latency observations for /search = %d, want 1", got)
	}
	if got := srv.met.inflight.Value(); got != 0 {
		t.Errorf("in-flight gauge after requests finished = %d, want 0", got)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"pit_http_requests_total",
		"pit_http_request_duration_seconds",
		"pit_http_inflight_requests",
		"pit_http_shed_total",
		"pit_http_panics_total",
		"pit_http_degraded_total",
		"pit_http_client_closed_total",
	} {
		if !strings.Contains(b.String(), name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}

// TestShedCounter: a request rejected by the in-flight limiter increments
// the shed counter and is recorded with code 429.
func TestShedCounter(t *testing.T) {
	eng := faultEngine(t)
	srv, _ := obsServer(t, eng, Config{MaxInflight: 1})

	entered := make(chan struct{})
	release := make(chan struct{})
	fake := &fakeSummarizer{fn: func(n int32, ctx context.Context, id topics.TopicID) (summary.Summary, error) {
		if n == 1 {
			close(entered)
			select {
			case <-release:
			case <-ctx.Done():
				return summary.Summary{}, ctx.Err()
			}
		}
		return dummySummary(id), nil
	}}
	eng.SetSummarizer(core.MethodLRW, fake)

	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=tag000&user=3&k=3", nil))
	}()
	<-entered
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=tag000&user=4&k=3", nil))
	close(release)
	<-firstDone

	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated request = %d, want 429", rec.Code)
	}
	if got := srv.met.shed.Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	if got := srv.met.requests.With("/search", "429").Value(); got != 1 {
		t.Errorf(`requests{route="/search",code="429"} = %d, want 1`, got)
	}
}

// TestPanicCounter: a handler panic isolated by withRecovery increments
// the panic counter alongside the 500. (A summarizer panic would not do:
// the engine's singleflight recovers it into an error long before the
// HTTP recovery middleware, so the panic must come from the handler
// itself.)
func TestPanicCounter(t *testing.T) {
	eng := faultEngine(t)
	srv, _ := obsServer(t, eng, Config{})

	var h http.Handler = http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("injected handler panic")
	})
	h = srv.withRecovery(h)
	h = srv.withAccessLog(h)
	h = srv.withRequestID(h)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=tag000&user=3&k=3", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	if got := srv.met.panics.Value(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}
	if got := srv.met.requests.With("/search", "500").Value(); got != 1 {
		t.Errorf(`requests{route="/search",code="500"} = %d, want 1`, got)
	}
}

// TestDegradedAndClientClosedCounters: a deadline-degraded search bumps
// the degraded counter; a client disconnect bumps client-closed and is
// recorded with status 499. Some topics are pre-materialized so the
// ladder has a materialized answer to degrade to (with nothing cached it
// would be the planner's 503 instead — see faults_test.go).
func TestDegradedAndClientClosedCounters(t *testing.T) {
	eng := faultEngine(t)
	srv, _ := obsServer(t, eng, Config{RequestTimeout: 50 * time.Millisecond})
	for i := 0; i < faultTopics/2; i++ {
		if _, err := eng.Summarize(context.Background(), core.MethodLRW, topics.TopicID(i)); err != nil {
			t.Fatal(err)
		}
	}
	fake := &fakeSummarizer{fn: func(_ int32, ctx context.Context, _ topics.TopicID) (summary.Summary, error) {
		<-ctx.Done()
		return summary.Summary{}, ctx.Err()
	}}
	eng.SetSummarizer(core.MethodLRW, fake)

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=tag000&user=3&k=3", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded search = %d, want 200: %s", rec.Code, rec.Body)
	}
	if got := srv.met.degraded.Value(); got != 1 {
		t.Errorf("degraded counter = %d, want 1", got)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=tag000&user=3&k=3", nil).WithContext(ctx))
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("canceled request = %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if got := srv.met.clientClosed.Value(); got != 1 {
		t.Errorf("client-closed counter = %d, want 1", got)
	}
	if got := srv.met.requests.With("/search", "499").Value(); got != 1 {
		t.Errorf(`requests{route="/search",code="499"} = %d, want 1`, got)
	}
}

// TestDegradedDiversifiedKeepsLambda is the regression test for the
// lambda-dropping degradation bug: a lambda > 0 search whose deadline
// expires must degrade to a *diversified* materialized ranking. Before
// the fix, the server's degradation path called SearchMaterialized
// unconditionally and the degraded answer silently lost the MMR re-rank
// the client asked for; the planner's materialized tier now threads
// lambda through.
//
// The preloaded summaries are crafted (from the user's actual Γ
// propagation values) so the plain and diversified top-2 provably
// differ: topics 0, 1 and 3 ride representative a — topic 1 fully
// overlaps topic 0 — while topic 2 rides b.
func TestDegradedDiversifiedKeepsLambda(t *testing.T) {
	eng := faultEngine(t)
	srv, _ := obsServer(t, eng, Config{RequestTimeout: 50 * time.Millisecond})

	user := graph.NodeID(-1)
	var a, b graph.NodeID
	var pa, pb float64
	g := eng.Graph()
	for u := 0; u < g.NumNodes(); u++ {
		srcs, props, _ := eng.Prop().Gamma(graph.NodeID(u))
		if len(srcs) >= 2 {
			user, a, b, pa, pb = graph.NodeID(u), srcs[0], srcs[1], props[0], props[1]
			break
		}
	}
	if user < 0 {
		t.Fatal("no user with |Γ| >= 2 in the test graph")
	}
	x := 0.45 * pa / pb
	if x > 1 {
		x = 1
	}
	y := 0.5 * pb * x / pa
	if err := eng.PreloadSummaries(core.MethodLRW, []summary.Summary{
		summary.New(0, []summary.WeightedNode{{Node: a, Weight: 1}}),
		summary.New(1, []summary.WeightedNode{{Node: a, Weight: 0.9}}),
		summary.New(2, []summary.WeightedNode{{Node: b, Weight: x}}),
		summary.New(3, []summary.WeightedNode{{Node: a, Weight: y}}),
	}); err != nil {
		t.Fatal(err)
	}
	// The two remaining topics stay uncached and block past the deadline,
	// forcing the degraded path.
	fake := &fakeSummarizer{fn: func(_ int32, ctx context.Context, _ topics.TopicID) (summary.Summary, error) {
		<-ctx.Done()
		return summary.Summary{}, ctx.Err()
	}}
	eng.SetSummarizer(core.MethodLRW, fake)

	label := func(i int) string { return eng.Space().Topic(topics.TopicID(i)).Label }
	query := fmt.Sprintf("/search?q=tag000&user=%d&k=2&lambda=1", user)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, query, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded diversified search = %d, want 200: %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Error("response not marked degraded")
	}
	if len(resp.Results) != 2 {
		t.Fatalf("degraded diversified results = %d, want 2: %s", len(resp.Results), rec.Body)
	}
	// Topic 1 fully overlaps topic 0's representative; with lambda=1 its
	// adjusted score collapses and the disjoint topic 2 must take the
	// second slot. The pre-fix code returned the plain ranking [0, 1].
	if resp.Results[0].Topic != label(0) || resp.Results[1].Topic != label(2) {
		t.Errorf("degraded diversified top-2 = [%s %s], want [%s %s] (lambda re-rank lost?)",
			resp.Results[0].Topic, resp.Results[1].Topic, label(0), label(2))
	}
	if got := srv.met.degraded.Value(); got != 1 {
		t.Errorf("degraded counter = %d, want 1", got)
	}
}
