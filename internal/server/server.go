// Package server exposes a built PIT-Search engine over HTTP with a small
// JSON API — the deployment surface for the personalized services the
// paper's introduction motivates (personalized recommendation and search,
// target advertising, product promotion):
//
//	GET /search?q=<keywords>&user=<id>&k=<n>&method=<lrw|rcl>&lambda=<0..1>
//	GET /topics?q=<keywords>            — q-related topics (no ranking)
//	GET /stats                          — graph/index/topic-space counters
//	GET /healthz                        — liveness: process is up
//	GET /readyz                         — readiness: indexes are built
//
// The handler stack is production-hardened: every request gets an ID and
// an access-log line; panics in a handler are isolated into a single 500;
// a per-request deadline (Config.RequestTimeout) is threaded through the
// engine as a context so expired requests stop burning CPU; a semaphore
// (Config.MaxInflight) sheds excess load with 429 + Retry-After; and
// /search runs through the engine's fidelity planner
// (core.SearchPlanned, DESIGN.md §13): a search that cannot afford or
// cannot complete full-fidelity summarization degrades down the tier
// ladder — materialized summaries only, then the last-known-good stale
// answer — and answers 200 with "degraded": true and the serving tier
// in the "tier" field and X-Pit-Tier header; only a request nothing
// cached can answer gets 503 + Retry-After.
//
// All handlers are read-only against the engine and safe for concurrent
// use. The engine's indexes may be built after New: until MarkReady is
// called the API answers 503 and /readyz reports not-ready, so index
// construction can run off the startup critical path.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plan"
)

// statusClientClosedRequest is the de-facto (nginx) status code for a
// request abandoned by the client before the response was written.
const statusClientClosedRequest = 499

// tierHeader is the response header carrying the fidelity tier that
// served (or refused) a /search request.
const tierHeader = "X-Pit-Tier"

// SearchResult is one JSON row of a /search response.
type SearchResult struct {
	Rank  int     `json:"rank"`
	Topic string  `json:"topic"`
	Tag   string  `json:"tag"`
	Score float64 `json:"score"`
}

// SearchResponse is the /search payload.
type SearchResponse struct {
	Query   string         `json:"query"`
	User    int32          `json:"user"`
	Method  string         `json:"method"`
	K       int            `json:"k"`
	Results []SearchResult `json:"results"`
	// Tier is the fidelity tier that served the answer ("full",
	// "materialized" or "stale") — always present and always matching
	// the X-Pit-Tier response header.
	Tier string `json:"tier"`
	// Degraded is set when the answer was served below full fidelity
	// (tier != "full"): materialized summaries only, or a stale
	// last-known-good result — a partial or older answer instead of an
	// error (resource-constrained graceful degradation).
	Degraded bool `json:"degraded,omitempty"`
}

// TopicsResponse is the /topics payload.
type TopicsResponse struct {
	Query  string   `json:"query"`
	Topics []string `json:"topics"`
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Nodes            int     `json:"nodes"`
	Edges            int     `json:"edges"`
	Topics           int     `json:"topics"`
	PropIndexEntries int     `json:"prop_index_entries"`
	PropIndexTheta   float64 `json:"prop_index_theta"`
	WalkL            int     `json:"walk_l"`
	WalkR            int     `json:"walk_r"`
	CachedLRW        int     `json:"cached_summaries_lrw"`
	CachedRCL        int     `json:"cached_summaries_rcl"`
}

type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// Config tunes the serving stack. The zero value serves with no deadline,
// no load shedding, k capped at 100 and the standard logger.
type Config struct {
	// MaxK caps the k any request may ask for (default 100).
	MaxK int
	// RequestTimeout is the per-request deadline applied to /search,
	// /topics and /stats. Zero disables the deadline.
	RequestTimeout time.Duration
	// MaxInflight bounds concurrently served API requests; excess requests
	// are shed immediately with 429 + Retry-After. Zero disables shedding.
	// Degradation budgets (the materialized-tier timeout that replaced
	// the old DegradeTimeout, the stale TTL, the breaker) live in the
	// engine's plan.Config — the planner owns the ladder; the server
	// only annotates what it served.
	MaxInflight int
	// Logger receives access-log, panic and encode-failure lines
	// (default log.Default()).
	Logger *log.Logger
	// Registry receives the server's metrics (request/status counters,
	// latency histograms, in-flight gauge, shed/panic/degraded/
	// client-closed counters). Nil means a private registry: the metrics
	// are still collected, just not exposed anywhere.
	Registry *obs.Registry
}

func (c *Config) fill() {
	if c.MaxK <= 0 {
		c.MaxK = 100
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
}

// Server wraps an engine with HTTP handlers. Create with New, mount with
// Handler, flip MarkReady once the engine's indexes are built.
type Server struct {
	eng      *core.Engine
	cfg      Config
	met      *serverMetrics
	ready    atomic.Bool
	reqSeq   atomic.Uint64
	inflight chan struct{}
}

// New returns a Server over the engine. The engine's indexes do not have
// to be built yet: the server starts not-ready (API answers 503, /readyz
// reports failure) unless they already are. Call MarkReady after
// BuildIndexes (and any pre-materialization) completes.
func New(eng *core.Engine, cfg Config) (*Server, error) {
	if eng == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	cfg.fill()
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{eng: eng, cfg: cfg, met: newServerMetrics(reg)}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	if eng.Ready() {
		s.ready.Store(true)
	}
	return s, nil
}

// MarkReady flips /readyz to success and opens the API for traffic. Call
// it once the engine's indexes (and optional summary materialization)
// are built.
func (s *Server) MarkReady() { s.ready.Store(true) }

// Ready reports whether the server is accepting API traffic.
func (s *Server) Ready() bool { return s.ready.Load() }

// ctxKey is the context key type for request-scoped values.
type ctxKey int

const ridKey ctxKey = 0

// RequestID returns the request ID assigned by the middleware stack, or
// "" outside a request.
func RequestID(ctx context.Context) string {
	rid, _ := ctx.Value(ridKey).(string)
	return rid
}

// Handler returns the full middleware-wrapped route multiplexer:
//
//	request ID → access log → panic recovery → [API only: load shedding →
//	deadline] → routes
//
// Health endpoints bypass the limiter and the deadline so orchestrator
// probes keep answering under overload.
func (s *Server) Handler() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("GET /search", s.handleSearch)
	api.HandleFunc("GET /topics", s.handleTopics)
	api.HandleFunc("GET /stats", s.handleStats)
	var apiH http.Handler = api
	apiH = s.withTimeout(apiH)
	apiH = s.withLimit(apiH)

	root := http.NewServeMux()
	root.Handle("/search", apiH)
	root.Handle("/topics", apiH)
	root.Handle("/stats", apiH)
	root.HandleFunc("GET /healthz", s.handleHealthz)
	root.HandleFunc("GET /readyz", s.handleReadyz)

	var h http.Handler = root
	h = s.withRecovery(h)
	h = s.withAccessLog(h)
	h = s.withRequestID(h)
	return h
}

// statusRecorder captures the response status for the access log and lets
// the panic handler detect whether a response was already started.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.status = http.StatusOK
		r.wrote = true
	}
	return r.ResponseWriter.Write(b)
}

// Unwrap exposes the wrapped writer to http.ResponseController, so
// Flusher/Hijacker/deadline control reach the real connection through
// the middleware stack instead of dead-ending at the recorder.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// Flush satisfies http.Flusher for handlers that type-assert instead of
// using ResponseController. Flushing commits the (implicit 200) status
// line, so the recorder marks the response started first — otherwise the
// panic handler could try to write a second status line mid-stream.
func (r *statusRecorder) Flush() {
	if !r.wrote {
		r.status = http.StatusOK
		r.wrote = true
	}
	// ResponseController resolves the underlying Flusher through Unwrap
	// chains, so this works even when another wrapper sits below.
	_ = http.NewResponseController(r.ResponseWriter).Flush()
}

// withRequestID assigns each request a process-unique ID, exposed to
// handlers via the context and to clients via the X-Request-ID header.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := fmt.Sprintf("req-%08d", s.reqSeq.Add(1))
		w.Header().Set("X-Request-ID", rid)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ridKey, rid)))
	})
}

// withAccessLog emits one structured line per request with latency and
// final status, and records the request in the metrics registry
// (per-route count/latency, in-flight gauge, client-closed counter).
func (s *Server) withAccessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		s.met.inflight.Inc()
		next.ServeHTTP(rec, r)
		s.met.inflight.Dec()
		dur := time.Since(start)
		s.met.observe(routeLabel(r.URL.Path), rec.status, dur.Seconds())
		s.cfg.Logger.Printf("%s method=%s path=%s status=%d dur=%s",
			RequestID(r.Context()), r.Method, r.URL.Path, rec.status, dur.Round(time.Microsecond))
	})
}

// withRecovery isolates a panicking handler into a single 500 (with the
// request ID) instead of tearing the whole process down.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler { // net/http's own abort protocol
					panic(p)
				}
				s.met.panics.Inc()
				s.cfg.Logger.Printf("%s panic serving %s: %v\n%s",
					RequestID(r.Context()), r.URL.Path, p, debug.Stack())
				if rec, ok := w.(*statusRecorder); !ok || !rec.wrote {
					s.writeErr(w, r, http.StatusInternalServerError, "internal error")
				}
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withLimit sheds load once MaxInflight requests are already being
// served: excess requests get an immediate 429 with Retry-After instead
// of queueing toward collapse.
func (s *Server) withLimit(next http.Handler) http.Handler {
	if s.inflight == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		default:
			s.met.shed.Inc()
			w.Header().Set("Retry-After", "1")
			s.writeErr(w, r, http.StatusTooManyRequests, "server at capacity (%d in-flight requests)", s.cfg.MaxInflight)
		}
	})
}

// withTimeout applies the per-request deadline; the context reaches the
// engine, whose cancellation checks stop the search mid-loop.
func (s *Server) withTimeout(next http.Handler) http.Handler {
	if s.cfg.RequestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, payload interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(payload); err != nil {
		// The status line is gone; all we can do is leave a trace tied to
		// the request ID instead of dropping the failure silently.
		s.cfg.Logger.Printf("%s encode response: %v", RequestID(r.Context()), err)
	}
}

func (s *Server) writeErr(w http.ResponseWriter, r *http.Request, status int, format string, args ...interface{}) {
	s.writeJSON(w, r, status, errorResponse{
		Error:     fmt.Sprintf(format, args...),
		RequestID: RequestID(r.Context()),
	})
}

// requireReady gates an API handler until MarkReady: before that the
// engine is still building indexes and cannot answer.
func (s *Server) requireReady(w http.ResponseWriter, r *http.Request) bool {
	if s.ready.Load() {
		return true
	}
	w.Header().Set("Retry-After", "5")
	s.writeErr(w, r, http.StatusServiceUnavailable, "indexes are still building")
	return false
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready: indexes building")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if !s.requireReady(w, r) {
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		s.writeErr(w, r, http.StatusBadRequest, "missing q parameter")
		return
	}
	userStr := r.URL.Query().Get("user")
	user, err := strconv.ParseInt(userStr, 10, 32)
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, "bad user %q", userStr)
		return
	}
	if !s.eng.Graph().Valid(graph.NodeID(user)) {
		s.writeErr(w, r, http.StatusNotFound, "user %d not in the network", user)
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		k, err = strconv.Atoi(ks)
		if err != nil || k < 1 {
			s.writeErr(w, r, http.StatusBadRequest, "bad k %q", ks)
			return
		}
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}
	method := core.MethodLRW
	switch r.URL.Query().Get("method") {
	case "", "lrw":
	case "rcl":
		method = core.MethodRCL
	default:
		s.writeErr(w, r, http.StatusBadRequest, "unknown method %q (want lrw or rcl)", r.URL.Query().Get("method"))
		return
	}
	lambda := 0.0
	if ls := r.URL.Query().Get("lambda"); ls != "" {
		lambda, err = strconv.ParseFloat(ls, 64)
		if err != nil || lambda < 0 || lambda > 1 {
			s.writeErr(w, r, http.StatusBadRequest, "bad lambda %q (want 0..1)", ls)
			return
		}
	}

	// The fidelity planner owns the degradation ladder: full search,
	// then materialized-only, then the stale last-known-good answer,
	// then an explicit 503. The server's job is only to annotate what
	// actually served the response.
	res, outcome, err := s.eng.SearchPlanned(r.Context(), method, q, graph.NodeID(user), k, lambda)
	if err != nil {
		s.failSearch(w, r, err)
		return
	}
	tier := outcome.Tier.String()
	w.Header().Set(tierHeader, tier)
	s.met.tierServed(outcome.Tier)
	degraded := outcome.Tier != plan.TierFull
	if degraded {
		s.met.degraded.Inc()
	}
	resp := SearchResponse{
		Query:    q,
		User:     int32(user),
		Method:   method.String(),
		K:        k,
		Results:  make([]SearchResult, 0, len(res)),
		Tier:     tier,
		Degraded: degraded,
	}
	for i, tr := range res {
		resp.Results = append(resp.Results, SearchResult{
			Rank:  i + 1,
			Topic: tr.Topic.Label,
			Tag:   tr.Topic.Tag,
			Score: tr.Score,
		})
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// failSearch maps a failed planned search to a response: 400 for
// invalid arguments, 499 for a client that went away, 503 while
// indexes build, 503 + Retry-After when the whole fidelity ladder is
// exhausted (ErrUnavailable — the planner's explicit "nothing cached
// can answer"), 504 for a surfaced deadline (PolicyFull deployments),
// 500 otherwise.
func (s *Server) failSearch(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, core.ErrInvalidArgument):
		s.writeErr(w, r, http.StatusBadRequest, "bad request: %v", err)
	case errors.Is(err, core.ErrNotReady):
		w.Header().Set("Retry-After", "5")
		s.writeErr(w, r, http.StatusServiceUnavailable, "indexes are still building")
	case errors.Is(err, core.ErrUnavailable):
		// The one planned 5xx: no tier — not even stale — could answer.
		w.Header().Set(tierHeader, plan.TierUnavailable.String())
		w.Header().Set("Retry-After", "1")
		s.met.tierServed(plan.TierUnavailable)
		s.writeErr(w, r, http.StatusServiceUnavailable, "no fidelity tier can answer: %v", err)
	case errors.Is(err, context.Canceled):
		// The client disconnected; nobody is reading the body, but the
		// status still lands in the access log.
		s.writeErr(w, r, statusClientClosedRequest, "client closed request")
	case errors.Is(err, context.DeadlineExceeded):
		s.writeErr(w, r, http.StatusGatewayTimeout, "deadline exceeded: %v", err)
	default:
		s.writeErr(w, r, http.StatusInternalServerError, "search failed: %v", err)
	}
}

func (s *Server) handleTopics(w http.ResponseWriter, r *http.Request) {
	if !s.requireReady(w, r) {
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		s.writeErr(w, r, http.StatusBadRequest, "missing q parameter")
		return
	}
	related := s.eng.Space().Related(q)
	resp := TopicsResponse{Query: q, Topics: make([]string, 0, len(related))}
	for _, t := range related {
		resp.Topics = append(resp.Topics, s.eng.Space().Topic(t).Label)
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !s.requireReady(w, r) {
		return
	}
	g := s.eng.Graph()
	s.writeJSON(w, r, http.StatusOK, StatsResponse{
		Nodes:            g.NumNodes(),
		Edges:            g.NumEdges(),
		Topics:           s.eng.Space().NumTopics(),
		PropIndexEntries: s.eng.Prop().Size(),
		PropIndexTheta:   s.eng.Prop().Theta(),
		WalkL:            s.eng.Walks().L,
		WalkR:            s.eng.Walks().R,
		CachedLRW:        s.eng.CachedSummaries(core.MethodLRW),
		CachedRCL:        s.eng.CachedSummaries(core.MethodRCL),
	})
}
