// Package server exposes a built PIT-Search engine over HTTP with a small
// JSON API — the deployment surface for the personalized services the
// paper's introduction motivates (personalized recommendation and search,
// target advertising, product promotion):
//
//	GET /search?q=<keywords>&user=<id>&k=<n>&method=<lrw|rcl>&lambda=<0..1>
//	GET /topics?q=<keywords>            — q-related topics (no ranking)
//	GET /stats                          — graph/index/topic-space counters
//	GET /healthz                        — liveness: process is up
//	GET /readyz                         — readiness: indexes are built
//
// With a streaming pipeline attached (Config.Stream) two more routes
// mount:
//
//	POST /updates                       — submit edge events / node growth
//	POST /subscribe?q=&user=&k=&...     — standing query, pushes over SSE
//
// Streaming swaps the serving engine: handlers resolve the current
// engine per request, and a request that loses the swap race (its
// engine retired under it, core.ErrNotReady) transparently retries on
// the replacement. /subscribe bypasses the request deadline and the
// in-flight limiter — it is a long-lived event stream with its own
// bound (Config.MaxSubscribers) — and pushes flow through the
// statusRecorder's Flush/Unwrap path.
//
// The handler stack is production-hardened: every request gets an ID and
// an access-log line; panics in a handler are isolated into a single 500;
// a per-request deadline (Config.RequestTimeout) is threaded through the
// engine as a context so expired requests stop burning CPU; a semaphore
// (Config.MaxInflight) sheds excess load with 429 + Retry-After; and
// /search runs through the engine's fidelity planner
// (core.SearchPlanned, DESIGN.md §13): a search that cannot afford or
// cannot complete full-fidelity summarization degrades down the tier
// ladder — materialized summaries only, then the last-known-good stale
// answer — and answers 200 with "degraded": true and the serving tier
// in the "tier" field and X-Pit-Tier header; only a request nothing
// cached can answer gets 503 + Retry-After.
//
// All handlers are read-only against the engine and safe for concurrent
// use. The engine's indexes may be built after New: until MarkReady is
// called the API answers 503 and /readyz reports not-ready, so index
// construction can run off the startup critical path.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/stream"
	"repro/internal/subscribe"
	"repro/internal/topics"
)

// statusClientClosedRequest is the de-facto (nginx) status code for a
// request abandoned by the client before the response was written.
const statusClientClosedRequest = 499

// tierHeader is the response header carrying the fidelity tier that
// served (or refused) a /search request.
const tierHeader = "X-Pit-Tier"

// SearchResult is one JSON row of a /search response.
type SearchResult struct {
	Rank  int     `json:"rank"`
	Topic string  `json:"topic"`
	Tag   string  `json:"tag"`
	Score float64 `json:"score"`
}

// SearchResponse is the /search payload.
type SearchResponse struct {
	Query   string         `json:"query"`
	User    int32          `json:"user"`
	Method  string         `json:"method"`
	K       int            `json:"k"`
	Results []SearchResult `json:"results"`
	// Tier is the fidelity tier that served the answer ("full",
	// "materialized" or "stale") — always present and always matching
	// the X-Pit-Tier response header.
	Tier string `json:"tier"`
	// Degraded is set when the answer was served below full fidelity
	// (tier != "full"): materialized summaries only, or a stale
	// last-known-good result — a partial or older answer instead of an
	// error (resource-constrained graceful degradation).
	Degraded bool `json:"degraded,omitempty"`
}

// TopicsResponse is the /topics payload.
type TopicsResponse struct {
	Query  string   `json:"query"`
	Topics []string `json:"topics"`
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Nodes            int     `json:"nodes"`
	Edges            int     `json:"edges"`
	Topics           int     `json:"topics"`
	PropIndexEntries int     `json:"prop_index_entries"`
	PropIndexTheta   float64 `json:"prop_index_theta"`
	WalkL            int     `json:"walk_l"`
	WalkR            int     `json:"walk_r"`
	CachedLRW        int     `json:"cached_summaries_lrw"`
	CachedRCL        int     `json:"cached_summaries_rcl"`
	// Shards reports the serving partition width; omitted (0) for a
	// single-engine deployment.
	Shards int `json:"shards,omitempty"`
}

// Backend is the query surface the server fronts: a single
// *core.Engine or the multi-shard *shard.Router — the handlers cannot
// tell the difference, which is the point (scatter-gather stays below
// the serving layer).
type Backend interface {
	Ready() bool
	Graph() *graph.Graph
	Space() *topics.Space
	Hold(ctx context.Context) (context.Context, func(), error)
	Search(ctx context.Context, m core.Method, query string, user graph.NodeID, k int) ([]core.TopicResult, error)
	SearchDiverse(ctx context.Context, m core.Method, query string, user graph.NodeID, k int, lambda float64) ([]core.TopicResult, error)
	SearchPlanned(ctx context.Context, m core.Method, query string, user graph.NodeID, k int, lambda float64) ([]core.TopicResult, core.PlanOutcome, error)
	CachedSummaries(m core.Method) int
	IndexStats() core.IndexStats
}

// StreamBackend is the update surface behind POST /updates: a single
// stream.Pipeline or a shard.StreamSet fanning events to one pipeline
// per shard.
type StreamBackend interface {
	Submit(events ...stream.Event) error
	GrowNodes(n int) error
	PendingEvents() int
	Swaps() uint64
}

type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// Config tunes the serving stack. The zero value serves with no deadline,
// no load shedding, k capped at 100 and the standard logger.
type Config struct {
	// MaxK caps the k any request may ask for (default 100).
	MaxK int
	// RequestTimeout is the per-request deadline applied to /search,
	// /topics and /stats. Zero disables the deadline.
	RequestTimeout time.Duration
	// MaxInflight bounds concurrently served API requests; excess requests
	// are shed immediately with 429 + Retry-After. Zero disables shedding.
	// Degradation budgets (the materialized-tier timeout that replaced
	// the old DegradeTimeout, the stale TTL, the breaker) live in the
	// engine's plan.Config — the planner owns the ladder; the server
	// only annotates what it served.
	MaxInflight int
	// Logger receives access-log, panic and encode-failure lines
	// (default log.Default()).
	Logger *log.Logger
	// Registry receives the server's metrics (request/status counters,
	// latency histograms, in-flight gauge, shed/panic/degraded/
	// client-closed counters). Nil means a private registry: the metrics
	// are still collected, just not exposed anywhere.
	Registry *obs.Registry
	// Stream, when set, attaches a streaming update surface: POST
	// /updates mounts. When it is a *stream.Pipeline and Source is nil,
	// handlers resolve the pipeline's *current* engine instead of the
	// backend passed to New (which must then be the pipeline's initial
	// engine).
	Stream StreamBackend
	// Source, when set, resolves the backend serving the current
	// request — the hook a sharded deployment uses (the router is the
	// stable backend; its shards swap underneath it). Overrides the
	// *stream.Pipeline default above.
	Source func() Backend
	// Subscriptions, when set (requires Stream), mounts POST /subscribe:
	// standing queries with SSE push delivery after applied batches.
	Subscriptions *subscribe.Registry
	// MaxSubscribers bounds concurrently connected /subscribe streams
	// (default 256); excess subscribers get 429.
	MaxSubscribers int
	// SubscribeHeartbeat is the SSE keep-alive comment interval
	// (default 15s), which doubles as the dead-client detection bound.
	SubscribeHeartbeat time.Duration
}

func (c *Config) fill() {
	if c.MaxK <= 0 {
		c.MaxK = 100
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	if c.MaxSubscribers <= 0 {
		c.MaxSubscribers = 256
	}
	if c.SubscribeHeartbeat <= 0 {
		c.SubscribeHeartbeat = 15 * time.Second
	}
}

// Server wraps an engine with HTTP handlers. Create with New, mount with
// Handler, flip MarkReady once the engine's indexes are built.
type Server struct {
	// src resolves the backend serving the current request: the static
	// backend from New, Config.Source, or the streaming pipeline's
	// current engine.
	src         func() Backend
	cfg         Config
	met         *serverMetrics
	ready       atomic.Bool
	reqSeq      atomic.Uint64
	inflight    chan struct{}
	subscribers chan struct{}
}

// New returns a Server over the engine. The engine's indexes do not have
// to be built yet: the server starts not-ready (API answers 503, /readyz
// reports failure) unless they already are. Call MarkReady after
// BuildIndexes (and any pre-materialization) completes. When
// Config.Stream is set, eng must be that pipeline's initial engine;
// handlers then follow the pipeline across swaps.
func New(eng Backend, cfg Config) (*Server, error) {
	if eng == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	if cfg.Subscriptions != nil && cfg.Stream == nil {
		return nil, fmt.Errorf("server: Subscriptions requires Stream (pushes are driven by applied batches)")
	}
	cfg.fill()
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{cfg: cfg, met: newServerMetrics(reg)}
	switch {
	case cfg.Source != nil:
		s.src = cfg.Source
	default:
		if p, ok := cfg.Stream.(*stream.Pipeline); ok {
			s.src = func() Backend { return p.Engine() }
		} else {
			s.src = func() Backend { return eng }
		}
	}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	if cfg.Subscriptions != nil {
		s.subscribers = make(chan struct{}, cfg.MaxSubscribers)
	}
	if eng.Ready() {
		s.ready.Store(true)
	}
	return s, nil
}

// engine resolves the backend for the current request. Under streaming,
// consecutive calls may return different engines; handlers capture one
// and retry on the fresh one when theirs retires mid-request.
func (s *Server) engine() Backend { return s.src() }

// MarkReady flips /readyz to success and opens the API for traffic. Call
// it once the engine's indexes (and optional summary materialization)
// are built.
func (s *Server) MarkReady() { s.ready.Store(true) }

// Ready reports whether the server is accepting API traffic.
func (s *Server) Ready() bool { return s.ready.Load() }

// ctxKey is the context key type for request-scoped values.
type ctxKey int

const ridKey ctxKey = 0

// RequestID returns the request ID assigned by the middleware stack, or
// "" outside a request.
func RequestID(ctx context.Context) string {
	rid, _ := ctx.Value(ridKey).(string)
	return rid
}

// Handler returns the full middleware-wrapped route multiplexer:
//
//	request ID → access log → panic recovery → [API only: load shedding →
//	deadline] → routes
//
// Health endpoints bypass the limiter and the deadline so orchestrator
// probes keep answering under overload.
func (s *Server) Handler() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("GET /search", s.handleSearch)
	api.HandleFunc("GET /topics", s.handleTopics)
	api.HandleFunc("GET /stats", s.handleStats)
	if s.cfg.Stream != nil {
		api.HandleFunc("POST /updates", s.handleUpdates)
	}
	var apiH http.Handler = api
	apiH = s.withTimeout(apiH)
	apiH = s.withLimit(apiH)

	root := http.NewServeMux()
	root.Handle("/search", apiH)
	root.Handle("/topics", apiH)
	root.Handle("/stats", apiH)
	if s.cfg.Stream != nil {
		root.Handle("/updates", apiH)
	}
	if s.cfg.Subscriptions != nil {
		// Outside the limiter and the request deadline: a subscription
		// is a long-lived stream with its own concurrency bound, and a
		// deadline would kill it mid-push.
		root.HandleFunc("POST /subscribe", s.handleSubscribe)
	}
	root.HandleFunc("GET /healthz", s.handleHealthz)
	root.HandleFunc("GET /readyz", s.handleReadyz)

	var h http.Handler = root
	h = s.withRecovery(h)
	h = s.withAccessLog(h)
	h = s.withRequestID(h)
	return h
}

// statusRecorder captures the response status for the access log and lets
// the panic handler detect whether a response was already started.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.status = http.StatusOK
		r.wrote = true
	}
	return r.ResponseWriter.Write(b)
}

// Unwrap exposes the wrapped writer to http.ResponseController, so
// Flusher/Hijacker/deadline control reach the real connection through
// the middleware stack instead of dead-ending at the recorder.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// Flush satisfies http.Flusher for handlers that type-assert instead of
// using ResponseController. Flushing commits the (implicit 200) status
// line, so the recorder marks the response started first — otherwise the
// panic handler could try to write a second status line mid-stream.
func (r *statusRecorder) Flush() {
	if !r.wrote {
		r.status = http.StatusOK
		r.wrote = true
	}
	// ResponseController resolves the underlying Flusher through Unwrap
	// chains, so this works even when another wrapper sits below.
	_ = http.NewResponseController(r.ResponseWriter).Flush()
}

// withRequestID assigns each request a process-unique ID, exposed to
// handlers via the context and to clients via the X-Request-ID header.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := fmt.Sprintf("req-%08d", s.reqSeq.Add(1))
		w.Header().Set("X-Request-ID", rid)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ridKey, rid)))
	})
}

// withAccessLog emits one structured line per request with latency and
// final status, and records the request in the metrics registry
// (per-route count/latency, in-flight gauge, client-closed counter).
func (s *Server) withAccessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		s.met.inflight.Inc()
		next.ServeHTTP(rec, r)
		s.met.inflight.Dec()
		dur := time.Since(start)
		s.met.observe(routeLabel(r.URL.Path), rec.status, dur.Seconds())
		s.cfg.Logger.Printf("%s method=%s path=%s status=%d dur=%s",
			RequestID(r.Context()), r.Method, r.URL.Path, rec.status, dur.Round(time.Microsecond))
	})
}

// withRecovery isolates a panicking handler into a single 500 (with the
// request ID) instead of tearing the whole process down.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler { // net/http's own abort protocol
					panic(p)
				}
				s.met.panics.Inc()
				s.cfg.Logger.Printf("%s panic serving %s: %v\n%s",
					RequestID(r.Context()), r.URL.Path, p, debug.Stack())
				if rec, ok := w.(*statusRecorder); !ok || !rec.wrote {
					s.writeErr(w, r, http.StatusInternalServerError, "internal error")
				}
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withLimit sheds load once MaxInflight requests are already being
// served: excess requests get an immediate 429 with Retry-After instead
// of queueing toward collapse.
func (s *Server) withLimit(next http.Handler) http.Handler {
	if s.inflight == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		default:
			s.met.shed.Inc()
			w.Header().Set("Retry-After", "1")
			s.writeErr(w, r, http.StatusTooManyRequests, "server at capacity (%d in-flight requests)", s.cfg.MaxInflight)
		}
	})
}

// withTimeout applies the per-request deadline; the context reaches the
// engine, whose cancellation checks stop the search mid-loop.
func (s *Server) withTimeout(next http.Handler) http.Handler {
	if s.cfg.RequestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, payload interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(payload); err != nil {
		// The status line is gone; all we can do is leave a trace tied to
		// the request ID instead of dropping the failure silently.
		s.cfg.Logger.Printf("%s encode response: %v", RequestID(r.Context()), err)
	}
}

func (s *Server) writeErr(w http.ResponseWriter, r *http.Request, status int, format string, args ...interface{}) {
	s.writeJSON(w, r, status, errorResponse{
		Error:     fmt.Sprintf(format, args...),
		RequestID: RequestID(r.Context()),
	})
}

// requireReady gates an API handler until MarkReady: before that the
// engine is still building indexes and cannot answer.
func (s *Server) requireReady(w http.ResponseWriter, r *http.Request) bool {
	if s.ready.Load() {
		return true
	}
	w.Header().Set("Retry-After", "5")
	s.writeErr(w, r, http.StatusServiceUnavailable, "indexes are still building")
	return false
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready: indexes building")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// searchParams is the validated parameter set shared by /search and
// /subscribe (a standing query is just a search registered for pushes).
type searchParams struct {
	q      string
	user   graph.NodeID
	k      int
	method core.Method
	lambda float64
}

// parseSearchParams validates the common query parameters, writing the
// error response itself on failure. User existence is NOT checked here:
// it needs an engine, and the caller owns engine resolution.
func (s *Server) parseSearchParams(w http.ResponseWriter, r *http.Request) (searchParams, bool) {
	var p searchParams
	p.q = r.URL.Query().Get("q")
	if p.q == "" {
		s.writeErr(w, r, http.StatusBadRequest, "missing q parameter")
		return p, false
	}
	userStr := r.URL.Query().Get("user")
	user, err := strconv.ParseInt(userStr, 10, 32)
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, "bad user %q", userStr)
		return p, false
	}
	p.user = graph.NodeID(user)
	p.k = 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		p.k, err = strconv.Atoi(ks)
		if err != nil || p.k < 1 {
			s.writeErr(w, r, http.StatusBadRequest, "bad k %q", ks)
			return p, false
		}
	}
	if p.k > s.cfg.MaxK {
		p.k = s.cfg.MaxK
	}
	p.method = core.MethodLRW
	switch r.URL.Query().Get("method") {
	case "", "lrw":
	case "rcl":
		p.method = core.MethodRCL
	default:
		s.writeErr(w, r, http.StatusBadRequest, "unknown method %q (want lrw or rcl)", r.URL.Query().Get("method"))
		return p, false
	}
	if ls := r.URL.Query().Get("lambda"); ls != "" {
		p.lambda, err = strconv.ParseFloat(ls, 64)
		if err != nil || p.lambda < 0 || p.lambda > 1 {
			s.writeErr(w, r, http.StatusBadRequest, "bad lambda %q (want 0..1)", ls)
			return p, false
		}
	}
	return p, true
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if !s.requireReady(w, r) {
		return
	}
	p, ok := s.parseSearchParams(w, r)
	if !ok {
		return
	}
	eng := s.engine()
	if !eng.Graph().Valid(p.user) {
		s.writeErr(w, r, http.StatusNotFound, "user %d not in the network", p.user)
		return
	}

	// The fidelity planner owns the degradation ladder: full search,
	// then materialized-only, then the stale last-known-good answer,
	// then an explicit 503. The server's job is only to annotate what
	// actually served the response.
	res, outcome, err := eng.SearchPlanned(r.Context(), p.method, p.q, p.user, p.k, p.lambda)
	// ErrNotReady from an engine that is no longer current means the
	// request lost a swap race: its engine retired between the load and
	// the query. The fresh engine answers; each retry requires another
	// swap to have happened, so the loop terminates.
	for err != nil && errors.Is(err, core.ErrNotReady) {
		cur := s.engine()
		if cur == eng {
			break
		}
		eng = cur
		res, outcome, err = eng.SearchPlanned(r.Context(), p.method, p.q, p.user, p.k, p.lambda)
	}
	if err != nil {
		s.failSearch(w, r, err)
		return
	}
	tier := outcome.Tier.String()
	w.Header().Set(tierHeader, tier)
	s.met.tierServed(outcome.Tier)
	degraded := outcome.Tier != plan.TierFull
	if degraded {
		s.met.degraded.Inc()
	}
	resp := SearchResponse{
		Query:    p.q,
		User:     int32(p.user),
		Method:   p.method.String(),
		K:        p.k,
		Results:  searchRows(res),
		Tier:     tier,
		Degraded: degraded,
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// searchRows projects engine results onto the JSON row shape shared by
// /search responses and /subscribe pushes.
func searchRows(res []core.TopicResult) []SearchResult {
	rows := make([]SearchResult, 0, len(res))
	for i, tr := range res {
		rows = append(rows, SearchResult{
			Rank:  i + 1,
			Topic: tr.Topic.Label,
			Tag:   tr.Topic.Tag,
			Score: tr.Score,
		})
	}
	return rows
}

// failSearch maps a failed planned search to a response: 400 for
// invalid arguments, 499 for a client that went away, 503 while
// indexes build, 503 + Retry-After when the whole fidelity ladder is
// exhausted (ErrUnavailable — the planner's explicit "nothing cached
// can answer"), 504 for a surfaced deadline (PolicyFull deployments),
// 500 otherwise.
func (s *Server) failSearch(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, core.ErrInvalidArgument):
		s.writeErr(w, r, http.StatusBadRequest, "bad request: %v", err)
	case errors.Is(err, core.ErrNotReady):
		w.Header().Set("Retry-After", "5")
		s.writeErr(w, r, http.StatusServiceUnavailable, "indexes are still building")
	case errors.Is(err, core.ErrUnavailable):
		// The one planned 5xx: no tier — not even stale — could answer.
		w.Header().Set(tierHeader, plan.TierUnavailable.String())
		w.Header().Set("Retry-After", "1")
		s.met.tierServed(plan.TierUnavailable)
		s.writeErr(w, r, http.StatusServiceUnavailable, "no fidelity tier can answer: %v", err)
	case errors.Is(err, context.Canceled):
		// The client disconnected; nobody is reading the body, but the
		// status still lands in the access log.
		s.writeErr(w, r, statusClientClosedRequest, "client closed request")
	case errors.Is(err, context.DeadlineExceeded):
		s.writeErr(w, r, http.StatusGatewayTimeout, "deadline exceeded: %v", err)
	default:
		s.writeErr(w, r, http.StatusInternalServerError, "search failed: %v", err)
	}
}

func (s *Server) handleTopics(w http.ResponseWriter, r *http.Request) {
	if !s.requireReady(w, r) {
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		s.writeErr(w, r, http.StatusBadRequest, "missing q parameter")
		return
	}
	space := s.engine().Space()
	related := space.Related(q)
	resp := TopicsResponse{Query: q, Topics: make([]string, 0, len(related))}
	for _, t := range related {
		resp.Topics = append(resp.Topics, space.Topic(t).Label)
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !s.requireReady(w, r) {
		return
	}
	// Stats reads index internals outside the query entry points, so it
	// holds the engine's gate: a concurrent retire cannot unmap (or
	// cancel) under the read. Losing the swap race retries on the
	// replacement engine, like /search.
	for {
		eng := s.engine()
		_, release, err := eng.Hold(r.Context())
		if err != nil {
			if s.engine() != eng {
				continue
			}
			w.Header().Set("Retry-After", "5")
			s.writeErr(w, r, http.StatusServiceUnavailable, "engine unavailable: %v", err)
			return
		}
		g := eng.Graph()
		idx := eng.IndexStats()
		resp := StatsResponse{
			Nodes:            g.NumNodes(),
			Edges:            g.NumEdges(),
			Topics:           eng.Space().NumTopics(),
			PropIndexEntries: idx.PropEntries,
			PropIndexTheta:   idx.Theta,
			WalkL:            idx.WalkL,
			WalkR:            idx.WalkR,
			CachedLRW:        eng.CachedSummaries(core.MethodLRW),
			CachedRCL:        eng.CachedSummaries(core.MethodRCL),
		}
		if sh, ok := eng.(interface{ Shards() int }); ok {
			resp.Shards = sh.Shards()
		}
		release()
		s.writeJSON(w, r, http.StatusOK, resp)
		return
	}
}
