// Package server exposes a built PIT-Search engine over HTTP with a small
// JSON API — the deployment surface for the personalized services the
// paper's introduction motivates (personalized recommendation and search,
// target advertising, product promotion):
//
//	GET /search?q=<keywords>&user=<id>&k=<n>&method=<lrw|rcl>&lambda=<0..1>
//	GET /topics?q=<keywords>            — q-related topics (no ranking)
//	GET /stats                          — graph/index/topic-space counters
//	GET /healthz
//
// All handlers are read-only against the engine and safe for concurrent
// use once the engine's indexes are built.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/graph"
)

// SearchResult is one JSON row of a /search response.
type SearchResult struct {
	Rank  int     `json:"rank"`
	Topic string  `json:"topic"`
	Tag   string  `json:"tag"`
	Score float64 `json:"score"`
}

// SearchResponse is the /search payload.
type SearchResponse struct {
	Query   string         `json:"query"`
	User    int32          `json:"user"`
	Method  string         `json:"method"`
	K       int            `json:"k"`
	Results []SearchResult `json:"results"`
}

// TopicsResponse is the /topics payload.
type TopicsResponse struct {
	Query  string   `json:"query"`
	Topics []string `json:"topics"`
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Nodes            int     `json:"nodes"`
	Edges            int     `json:"edges"`
	Topics           int     `json:"topics"`
	PropIndexEntries int     `json:"prop_index_entries"`
	PropIndexTheta   float64 `json:"prop_index_theta"`
	WalkL            int     `json:"walk_l"`
	WalkR            int     `json:"walk_r"`
	CachedLRW        int     `json:"cached_summaries_lrw"`
	CachedRCL        int     `json:"cached_summaries_rcl"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Server wraps an engine with HTTP handlers. Create with New, mount with
// Handler.
type Server struct {
	eng *core.Engine
	// MaxK caps the k any request may ask for (default 100).
	maxK int
}

// New returns a Server over a fully built engine.
func New(eng *core.Engine, maxK int) (*Server, error) {
	if eng == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	if eng.Prop() == nil {
		return nil, fmt.Errorf("server: engine indexes not built")
	}
	if maxK <= 0 {
		maxK = 100
	}
	return &Server{eng: eng, maxK: maxK}, nil
}

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", s.handleSearch)
	mux.HandleFunc("GET /topics", s.handleTopics)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, payload interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(payload)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	userStr := r.URL.Query().Get("user")
	user, err := strconv.ParseInt(userStr, 10, 32)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad user %q", userStr)
		return
	}
	if !s.eng.Graph().Valid(graph.NodeID(user)) {
		writeErr(w, http.StatusNotFound, "user %d not in the network", user)
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		k, err = strconv.Atoi(ks)
		if err != nil || k < 1 {
			writeErr(w, http.StatusBadRequest, "bad k %q", ks)
			return
		}
	}
	if k > s.maxK {
		k = s.maxK
	}
	method := core.MethodLRW
	switch r.URL.Query().Get("method") {
	case "", "lrw":
	case "rcl":
		method = core.MethodRCL
	default:
		writeErr(w, http.StatusBadRequest, "unknown method %q (want lrw or rcl)", r.URL.Query().Get("method"))
		return
	}
	lambda := 0.0
	if ls := r.URL.Query().Get("lambda"); ls != "" {
		lambda, err = strconv.ParseFloat(ls, 64)
		if err != nil || lambda < 0 || lambda > 1 {
			writeErr(w, http.StatusBadRequest, "bad lambda %q (want 0..1)", ls)
			return
		}
	}

	var res []core.TopicResult
	if lambda > 0 {
		res, err = s.eng.SearchDiverse(method, q, graph.NodeID(user), k, lambda)
	} else {
		res, err = s.eng.Search(method, q, graph.NodeID(user), k)
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "search failed: %v", err)
		return
	}
	resp := SearchResponse{
		Query:   q,
		User:    int32(user),
		Method:  method.String(),
		K:       k,
		Results: make([]SearchResult, 0, len(res)),
	}
	for i, tr := range res {
		resp.Results = append(resp.Results, SearchResult{
			Rank:  i + 1,
			Topic: tr.Topic.Label,
			Tag:   tr.Topic.Tag,
			Score: tr.Score,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTopics(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	related := s.eng.Space().Related(q)
	resp := TopicsResponse{Query: q, Topics: make([]string, 0, len(related))}
	for _, t := range related {
		resp.Topics = append(resp.Topics, s.eng.Space().Topic(t).Label)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	g := s.eng.Graph()
	writeJSON(w, http.StatusOK, StatsResponse{
		Nodes:            g.NumNodes(),
		Edges:            g.NumEdges(),
		Topics:           s.eng.Space().NumTopics(),
		PropIndexEntries: s.eng.Prop().Size(),
		PropIndexTheta:   s.eng.Prop().Theta(),
		WalkL:            s.eng.Walks().L,
		WalkR:            s.eng.Walks().R,
		CachedLRW:        s.eng.CachedSummaries(core.MethodLRW),
		CachedRCL:        s.eng.CachedSummaries(core.MethodRCL),
	})
}
