package server

// Fault-injection suite for the production-hardened serving stack. A
// scriptable summarizer is installed at the engine's SetSummarizer seam so
// each test can make summarization slow, panicking, erroring or blocking,
// and then assert the HTTP layer's contract: cancellation stops engine
// work early (499), saturation sheds load (429), shutdown drains
// in-flight requests, and summarizer faults walk the fidelity ladder —
// expired deadlines degrade to cached summaries (200 + "degraded": true,
// X-Pit-Tier: materialized) and only a request no tier can answer gets
// the planner's explicit 503 + Retry-After (X-Pit-Tier: unavailable).

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/plan"
	"repro/internal/summary"
	"repro/internal/topics"
)

var errInjected = errors.New("injected backend failure")

// testLogger swallows the (intentionally noisy) access-log and panic lines
// the fault tests provoke.
func testLogger(t *testing.T) *log.Logger {
	t.Helper()
	return log.New(io.Discard, "", 0)
}

// faultTopics is TopicsPerTag in the fault-test dataset: every fault test
// queries tag000 and therefore fans out over this many summarizations.
const faultTopics = 6

// faultEngine builds a small fully indexed engine. Each test gets its own
// so injected faults and poisoned caches cannot leak across tests.
func faultEngine(t *testing.T) *core.Engine {
	t.Helper()
	return faultEnginePlanned(t, plan.Config{})
}

// faultEnginePlanned is faultEngine with an explicit planner config, for
// tests that pin a policy or enable the breaker.
func faultEnginePlanned(t *testing.T, pcfg plan.Config) *core.Engine {
	t.Helper()
	g, err := dataset.GenerateGraph(dataset.GraphConfig{
		Nodes: 200, MinOutDegree: 2, MaxOutDegree: 6, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	space, err := dataset.GenerateTopics(g, dataset.TopicConfig{
		Tags: 1, TopicsPerTag: faultTopics, MeanTopicNodes: 12, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(g, space, core.Options{WalkL: 3, WalkR: 4, Seed: 7, Plan: pcfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndexes(context.Background()); err != nil {
		t.Fatal(err)
	}
	return eng
}

// fakeSummarizer is the chaos double: fn receives the 1-based call number
// and decides what that call does (block, panic, error, succeed).
type fakeSummarizer struct {
	calls atomic.Int32
	fn    func(n int32, ctx context.Context, id topics.TopicID) (summary.Summary, error)
}

func (f *fakeSummarizer) Summarize(ctx context.Context, id topics.TopicID) (summary.Summary, error) {
	return f.fn(f.calls.Add(1), ctx, id)
}

// dummySummary is a structurally valid single-representative summary.
func dummySummary(id topics.TopicID) summary.Summary {
	return summary.New(id, []summary.WeightedNode{{Node: 1, Weight: 0.5}})
}

func faultServer(t *testing.T, eng *core.Engine, cfg Config) *Server {
	t.Helper()
	cfg.Logger = testLogger(t)
	srv, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestCanceledRequestStopsEngineWork: when the client goes away mid-search
// the context threaded through the engine stops the topic fan-out early —
// the summarizer's progress counter stays far below the related-topic
// count — and the access log records 499.
func TestCanceledRequestStopsEngineWork(t *testing.T) {
	eng := faultEngine(t)
	srv := faultServer(t, eng, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fake := &fakeSummarizer{fn: func(n int32, _ context.Context, id topics.TopicID) (summary.Summary, error) {
		cancel() // the client disconnects during the first summarization
		return dummySummary(id), nil
	}}
	eng.SetSummarizer(core.MethodLRW, fake)

	req := httptest.NewRequest(http.MethodGet, "/search?q=tag000&user=3&k=3", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)

	if rec.Code != statusClientClosedRequest {
		t.Errorf("canceled request = %d, want %d: %s", rec.Code, statusClientClosedRequest, rec.Body)
	}
	if got := fake.calls.Load(); got >= faultTopics {
		t.Errorf("engine summarized %d of %d topics after cancel, want early stop", got, faultTopics)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.RequestID == "" {
		t.Errorf("error body missing request id: %s", rec.Body)
	}
}

// TestLoadSheddingReturns429: with MaxInflight=1 and the only slot held by
// a blocked request, the next request is shed immediately with 429 and a
// Retry-After hint; once the slot frees, requests are served again.
func TestLoadSheddingReturns429(t *testing.T) {
	eng := faultEngine(t)
	srv := faultServer(t, eng, Config{MaxInflight: 1})

	entered := make(chan struct{})
	release := make(chan struct{})
	fake := &fakeSummarizer{fn: func(n int32, ctx context.Context, id topics.TopicID) (summary.Summary, error) {
		if n == 1 {
			close(entered)
			select {
			case <-release:
			case <-ctx.Done():
				return summary.Summary{}, ctx.Err()
			}
		}
		return dummySummary(id), nil
	}}
	eng.SetSummarizer(core.MethodLRW, fake)

	firstDone := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=tag000&user=3&k=3", nil))
		firstDone <- rec.Code
	}()

	<-entered // the single in-flight slot is now held
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=tag000&user=4&k=3", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("saturated request = %d, want 429: %s", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	// Health probes must keep answering under overload.
	if rec := probe(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz under saturation = %d, want 200", rec.Code)
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Errorf("first (blocked) request = %d, want 200", code)
	}
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=tag000&user=5&k=3", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("request after slot freed = %d, want 200: %s", rec.Code, rec.Body)
	}
}

// TestPanickingSummarizerIsolated: a panic inside the engine call tree
// is recovered (singleflight turns it into a build error), the planner
// exhausts the ladder — nothing is cached — and the response is the
// planner's explicit 503, not a process crash and not an opaque 500.
// The server — and even the same endpoint once the fault is removed —
// keeps serving.
func TestPanickingSummarizerIsolated(t *testing.T) {
	eng := faultEngine(t)
	srv := faultServer(t, eng, Config{})

	fake := &fakeSummarizer{fn: func(int32, context.Context, topics.TopicID) (summary.Summary, error) {
		panic("injected summarizer panic")
	}}
	eng.SetSummarizer(core.MethodLRW, fake)

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=tag000&user=3&k=3", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("panicking search = %d, want 503: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(tierHeader); got != "unavailable" {
		t.Errorf("X-Pit-Tier = %q, want unavailable", got)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" || e.RequestID == "" {
		t.Errorf("503 body missing error/request id: %s", rec.Body)
	}

	// Other endpoints are unaffected while the fault is still installed.
	if rec := probe(t, srv, "/stats"); rec.Code != http.StatusOK {
		t.Errorf("stats after panic = %d, want 200", rec.Code)
	}
	// Removing the fault restores the built-in summarizer and /search heals.
	eng.SetSummarizer(core.MethodLRW, nil)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=tag000&user=3&k=3", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("search after fault removed = %d, want 200: %s", rec.Code, rec.Body)
	}
}

// TestErroringSummarizerWalksLadder: under the default auto policy a
// plain build failure is not a 500 — the planner walks the ladder, finds
// nothing cached, and answers with its explicit 503 + Retry-After. Under
// PolicyFull the same fault surfaces raw as a 500, because the operator
// asked for full fidelity or an honest error.
func TestErroringSummarizerWalksLadder(t *testing.T) {
	erroring := func() *fakeSummarizer {
		return &fakeSummarizer{fn: func(int32, context.Context, topics.TopicID) (summary.Summary, error) {
			return summary.Summary{}, errInjected
		}}
	}

	t.Run("auto policy answers 503", func(t *testing.T) {
		eng := faultEngine(t)
		srv := faultServer(t, eng, Config{})
		eng.SetSummarizer(core.MethodLRW, erroring())

		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=tag000&user=3&k=3", nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("erroring search = %d, want 503: %s", rec.Code, rec.Body)
		}
		if got := rec.Header().Get("Retry-After"); got == "" {
			t.Error("503 missing Retry-After header")
		}
		if got := rec.Header().Get(tierHeader); got != "unavailable" {
			t.Errorf("X-Pit-Tier = %q, want unavailable", got)
		}
	})

	t.Run("policy full surfaces 500", func(t *testing.T) {
		eng := faultEnginePlanned(t, plan.Config{Policy: plan.PolicyFull})
		srv := faultServer(t, eng, Config{})
		eng.SetSummarizer(core.MethodLRW, erroring())

		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=tag000&user=3&k=3", nil))
		if rec.Code != http.StatusInternalServerError {
			t.Errorf("erroring search under PolicyFull = %d, want 500: %s", rec.Code, rec.Body)
		}
	})
}

// TestGracefulShutdownDrainsInflight: a real http.Server with a slow
// request in flight is told to Shutdown; the listener closes to new
// connections but the slow request completes with 200 and Shutdown
// returns nil — no request is dropped on SIGTERM.
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	eng := faultEngine(t)
	srv := faultServer(t, eng, Config{})

	started := make(chan struct{})
	fake := &fakeSummarizer{fn: func(n int32, ctx context.Context, id topics.TopicID) (summary.Summary, error) {
		if n == 1 {
			close(started)
			select {
			case <-time.After(300 * time.Millisecond): // slow but finite work
			case <-ctx.Done():
				return summary.Summary{}, ctx.Err()
			}
		}
		return dummySummary(id), nil
	}}
	eng.SetSummarizer(core.MethodLRW, fake)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	clientDone := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/search?q=tag000&user=3&k=3")
		if err != nil {
			clientDone <- -1
			return
		}
		resp.Body.Close()
		clientDone <- resp.StatusCode
	}()

	<-started // the slow request is now in flight
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		t.Errorf("Shutdown did not drain cleanly: %v", err)
	}
	if code := <-clientDone; code != http.StatusOK {
		t.Errorf("in-flight request during shutdown = %d, want 200", code)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
}

// TestDeadlineDegradesToMaterialized: some topics are pre-materialized,
// the rest hit a summarizer that blocks until the request deadline. The
// response must be a partial 200 with "degraded": true built from the
// cached summaries only — graceful degradation instead of a 504 — and
// the advertised tier (header and body) must say "materialized".
func TestDeadlineDegradesToMaterialized(t *testing.T) {
	eng := faultEngine(t)
	srv := faultServer(t, eng, Config{RequestTimeout: 100 * time.Millisecond})

	// Materialize half the topic space with the real LRW-A summarizer.
	const cached = faultTopics / 2
	for i := 0; i < cached; i++ {
		if _, err := eng.Summarize(context.Background(), core.MethodLRW, topics.TopicID(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Every remaining (uncached) topic is summarized by a fake that only
	// returns once the per-request deadline has expired.
	fake := &fakeSummarizer{fn: func(_ int32, ctx context.Context, _ topics.TopicID) (summary.Summary, error) {
		<-ctx.Done()
		return summary.Summary{}, ctx.Err()
	}}
	eng.SetSummarizer(core.MethodLRW, fake)

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=tag000&user=3&k=6", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded search = %d, want 200: %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Error("response not marked degraded")
	}
	if resp.Tier != "materialized" {
		t.Errorf("body tier = %q, want materialized", resp.Tier)
	}
	if got := rec.Header().Get(tierHeader); got != "materialized" {
		t.Errorf("X-Pit-Tier = %q, want materialized", got)
	}
	if len(resp.Results) == 0 || len(resp.Results) > cached {
		t.Errorf("degraded results = %d, want 1..%d (cached summaries only)", len(resp.Results), cached)
	}
	if got := fake.calls.Load(); got == 0 {
		t.Error("fake summarizer never reached — test exercised nothing")
	}
}

// TestDeadlineWithNothingCachedIsUnavailable: when the deadline expires
// and no summaries are materialized at all, every rung of the ladder
// comes up empty — the honest answer is the planner's explicit 503 with
// Retry-After and X-Pit-Tier: unavailable, not an empty 200 pretending
// a degraded answer exists.
func TestDeadlineWithNothingCachedIsUnavailable(t *testing.T) {
	eng := faultEngine(t)
	srv := faultServer(t, eng, Config{RequestTimeout: 50 * time.Millisecond})
	fake := &fakeSummarizer{fn: func(_ int32, ctx context.Context, _ topics.TopicID) (summary.Summary, error) {
		<-ctx.Done()
		return summary.Summary{}, ctx.Err()
	}}
	eng.SetSummarizer(core.MethodLRW, fake)

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q=tag000&user=3&k=3", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("fully-uncached search = %d, want 503: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Retry-After"); got == "" {
		t.Error("503 missing Retry-After header")
	}
	if got := rec.Header().Get(tierHeader); got != "unavailable" {
		t.Errorf("X-Pit-Tier = %q, want unavailable", got)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" || e.RequestID == "" {
		t.Errorf("503 body missing error/request id: %s", rec.Body)
	}
}

// TestWarmPathErrorsDontPoisonCache: WarmSummaries hitting an erroring
// summarizer part-way through must keep the summaries that already
// succeeded — a failed warm reports the error but never invalidates or
// re-builds prior work, so a retry after the fault clears only builds
// the missing topics.
func TestWarmPathErrorsDontPoisonCache(t *testing.T) {
	eng := faultEngine(t)

	// First three calls succeed, everything after errors. One worker makes
	// the topic order deterministic (0,1,2 cached, 3 fails, 4,5 unreached).
	const good = 3
	flaky := &fakeSummarizer{fn: func(n int32, _ context.Context, id topics.TopicID) (summary.Summary, error) {
		if n <= good {
			return dummySummary(id), nil
		}
		return summary.Summary{}, errInjected
	}}
	eng.SetSummarizer(core.MethodLRW, flaky)
	err := eng.WarmSummaries(context.Background(), core.MethodLRW, core.WarmOptions{Workers: 1})
	if !errors.Is(err, errInjected) {
		t.Fatalf("warm with erroring summarizer = %v, want errInjected", err)
	}
	if got := eng.CachedSummaries(core.MethodLRW); got != good {
		t.Fatalf("cached after failed warm = %d, want %d (succeeded topics must survive)", got, good)
	}

	// Heal the summarizer and retry: only the missing topics are built.
	healed := &fakeSummarizer{fn: func(_ int32, _ context.Context, id topics.TopicID) (summary.Summary, error) {
		return dummySummary(id), nil
	}}
	eng.SetSummarizer(core.MethodLRW, healed)
	if err := eng.WarmSummaries(context.Background(), core.MethodLRW, core.WarmOptions{Workers: 1}); err != nil {
		t.Fatalf("warm retry after heal: %v", err)
	}
	if got := eng.CachedSummaries(core.MethodLRW); got != faultTopics {
		t.Errorf("cached after retry = %d, want %d", got, faultTopics)
	}
	if got := healed.calls.Load(); got != faultTopics-good {
		t.Errorf("retry built %d topics, want %d (cached ones must not be re-summarized)", got, faultTopics-good)
	}
}
