package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

var testServer = sync.OnceValues(func() (*Server, error) {
	g, err := dataset.GenerateGraph(dataset.GraphConfig{
		Nodes: 500, MinOutDegree: 2, MaxOutDegree: 8, Seed: 31,
	})
	if err != nil {
		return nil, err
	}
	space, err := dataset.GenerateTopics(g, dataset.TopicConfig{
		Tags: 4, TopicsPerTag: 5, MeanTopicNodes: 20, Seed: 31,
	})
	if err != nil {
		return nil, err
	}
	eng, err := core.New(g, space, core.Options{WalkL: 4, WalkR: 8, Seed: 31})
	if err != nil {
		return nil, err
	}
	if err := eng.BuildIndexes(context.Background()); err != nil {
		return nil, err
	}
	return New(eng, Config{MaxK: 50})
})

func get(t *testing.T, path string) *httptest.ResponseRecorder {
	t.Helper()
	srv, err := testServer()
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return rec
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil engine accepted")
	}
	// An unbuilt engine is accepted but the server starts not-ready: the
	// API answers 503 until MarkReady, so index building can happen after
	// the listener is up.
	g, _ := dataset.GenerateGraph(dataset.GraphConfig{Nodes: 10, MinOutDegree: 1, MaxOutDegree: 2, Seed: 1})
	space, _ := dataset.GenerateTopics(g, dataset.TopicConfig{Tags: 1, TopicsPerTag: 1, MeanTopicNodes: 3, Seed: 1})
	eng, _ := core.New(g, space, core.Options{})
	srv, err := New(eng, Config{})
	if err != nil {
		t.Fatalf("unbuilt engine rejected: %v", err)
	}
	if srv.Ready() {
		t.Error("server over unbuilt engine reports ready")
	}
	req := httptest.NewRequest(http.MethodGet, "/search?q=x&user=1", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("not-ready /search = %d, want 503", rec.Code)
	}
	if rec := probe(t, srv, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("not-ready /readyz = %d, want 503", rec.Code)
	}
	if rec := probe(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("not-ready /healthz = %d, want 200", rec.Code)
	}
	srv.MarkReady()
	if rec := probe(t, srv, "/readyz"); rec.Code != http.StatusOK {
		t.Errorf("ready /readyz = %d, want 200", rec.Code)
	}
}

// probe issues a GET against a specific server instance.
func probe(t *testing.T, srv *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	rec := get(t, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
}

func TestSearchOK(t *testing.T) {
	rec := get(t, "/search?q=tag000&user=5&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d: %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Query != "tag000" || resp.User != 5 || resp.K != 3 {
		t.Errorf("echo fields wrong: %+v", resp)
	}
	if resp.Method != "LRW-A" {
		t.Errorf("default method = %q", resp.Method)
	}
	if len(resp.Results) == 0 || len(resp.Results) > 3 {
		t.Errorf("results = %d", len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.Rank != i+1 {
			t.Errorf("rank %d = %d", i, r.Rank)
		}
		if r.Tag != "tag000" {
			t.Errorf("result tag = %q", r.Tag)
		}
	}
}

func TestSearchRCLMethod(t *testing.T) {
	rec := get(t, "/search?q=tag001&user=5&k=2&method=rcl")
	if rec.Code != http.StatusOK {
		t.Fatalf("search rcl = %d: %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &resp)
	if resp.Method != "RCL-A" {
		t.Errorf("method = %q, want RCL-A", resp.Method)
	}
}

func TestSearchKCap(t *testing.T) {
	rec := get(t, "/search?q=tag000&user=5&k=500")
	var resp SearchResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &resp)
	if resp.K != 50 {
		t.Errorf("k = %d, want capped at 50", resp.K)
	}
}

func TestSearchErrors(t *testing.T) {
	cases := []struct {
		path string
		code int
	}{
		{"/search?user=1", http.StatusBadRequest},               // missing q
		{"/search?q=x", http.StatusBadRequest},                  // missing user
		{"/search?q=x&user=abc", http.StatusBadRequest},         // bad user
		{"/search?q=x&user=99999", http.StatusNotFound},         // unknown user
		{"/search?q=x&user=1&k=0", http.StatusBadRequest},       // bad k
		{"/search?q=x&user=1&method=zz", http.StatusBadRequest}, // bad method
	}
	for _, tc := range cases {
		rec := get(t, tc.path)
		if rec.Code != tc.code {
			t.Errorf("%s = %d, want %d (%s)", tc.path, rec.Code, tc.code, rec.Body)
		}
		var e errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body missing: %s", tc.path, rec.Body)
		}
	}
}

func TestSearchUnknownQueryGivesEmptyResults(t *testing.T) {
	rec := get(t, "/search?q=zzzz&user=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("unknown query = %d", rec.Code)
	}
	var resp SearchResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &resp)
	if len(resp.Results) != 0 {
		t.Errorf("results = %v, want empty", resp.Results)
	}
}

func TestTopics(t *testing.T) {
	rec := get(t, "/topics?q=tag002")
	if rec.Code != http.StatusOK {
		t.Fatalf("topics = %d", rec.Code)
	}
	var resp TopicsResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &resp)
	if len(resp.Topics) != 5 {
		t.Errorf("topics = %d, want 5", len(resp.Topics))
	}
	if rec := get(t, "/topics"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing q = %d", rec.Code)
	}
}

func TestStats(t *testing.T) {
	rec := get(t, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Nodes != 500 || resp.Topics != 20 || resp.PropIndexEntries <= 0 {
		t.Errorf("stats = %+v", resp)
	}
	if resp.WalkL != 4 || resp.WalkR != 8 {
		t.Errorf("walk params = %d/%d", resp.WalkL, resp.WalkR)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv, err := testServer()
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/search?q=x&user=1", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /search = %d, want 405", rec.Code)
	}
}

func TestConcurrentRequests(t *testing.T) {
	srv, err := testServer()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet, "/search?q=tag000&user=7&k=3", nil)
			rec := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("concurrent request %d = %d", i, rec.Code)
			}
		}(i)
	}
	wg.Wait()
}

func TestSearchWithLambda(t *testing.T) {
	rec := get(t, "/search?q=tag000&user=5&k=3&lambda=0.8")
	if rec.Code != http.StatusOK {
		t.Fatalf("lambda search = %d: %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Error("no diversified results")
	}
	for _, bad := range []string{"x", "-0.5", "1.5"} {
		if rec := get(t, "/search?q=tag000&user=5&lambda="+bad); rec.Code != http.StatusBadRequest {
			t.Errorf("lambda=%s accepted: %d", bad, rec.Code)
		}
	}
}
