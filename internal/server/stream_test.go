package server

// End-to-end streaming surface tests: POST /updates feeding the
// pipeline, POST /subscribe serving SSE pushes, and the swap protocol
// underneath both. The two-edge graph makes the push semantics exact: a
// re-weighting flips which topic the standing query ranks first, so the
// subscriber must see exactly one change push with the flipped order.

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/subscribe"
	"repro/internal/topics"
)

// streamHarness serves a 3-node graph where node 1 influences user 0
// strongly (0.9) and node 2 weakly (0.1); topic "alpha" lives on node 1,
// topic "beta" on node 2, both answering query "t". A standing query for
// user 0 therefore ranks alpha first until the weights flip.
func streamHarness(t *testing.T, cfg Config) (*httptest.Server, *stream.Pipeline) {
	t.Helper()
	b := graph.NewBuilder(3)
	b.MustAddEdge(1, 0, 0.9)
	b.MustAddEdge(2, 0, 0.1)
	g := b.Build()
	sb := topics.NewSpaceBuilder()
	alpha, err := sb.AddTopic("t", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	beta, err := sb.AddTopic("t", "beta")
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.AddNode(alpha, 1); err != nil {
		t.Fatal(err)
	}
	if err := sb.AddNode(beta, 2); err != nil {
		t.Fatal(err)
	}
	space := sb.Build()
	eng, err := core.New(g, space, core.Options{WalkL: 2, WalkR: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildIndexes(context.Background()); err != nil {
		t.Fatal(err)
	}
	subs := subscribe.NewRegistry(nil)
	p, err := stream.New(eng, stream.Config{
		BatchSize: 2,
		MaxAge:    20 * time.Millisecond,
		OnApply: func(ctx context.Context, r stream.ApplyResult) {
			subs.Dispatch(ctx, r.Engine, r.Stats.Affected, r.Seq)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stream = p
	cfg.Subscriptions = subs
	if cfg.Logger == nil {
		cfg.Logger = testLogger(t)
	}
	srv, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.MarkReady()
	p.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		p.Stop()
		p.Engine().Close()
	})
	return ts, p
}

// readSSE reads one SSE event (through the next blank line), returning
// the event name and the data payload.
func readSSE(t *testing.T, br *bufio.Reader) (event, data string) {
	t.Helper()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "" && (event != "" || data != ""):
			return event, data
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
		// Comment lines (heartbeats) and blank keep-alives fall through.
	}
}

func TestSubscribePushesOnRankingFlip(t *testing.T) {
	ts, _ := streamHarness(t, Config{})

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/subscribe?q=t&user=0&k=2", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /subscribe = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	br := bufio.NewReader(resp.Body)

	event, data := readSSE(t, br)
	if event != "topk" {
		t.Fatalf("initial event = %q, want topk", event)
	}
	var initial SubscribePush
	if err := json.Unmarshal([]byte(data), &initial); err != nil {
		t.Fatalf("decode initial push %q: %v", data, err)
	}
	if initial.Seq != 0 {
		t.Errorf("initial push seq = %d, want 0", initial.Seq)
	}
	if len(initial.Results) != 2 || initial.Results[0].Topic != "alpha" {
		t.Fatalf("initial ranking = %+v, want alpha first of 2", initial.Results)
	}

	// Flip the weights: the strong edge collapses, the weak one surges.
	// Two events hit BatchSize, so the background loop applies at once.
	body := `{"updates":[{"from":1,"to":0,"weight":0.05},{"from":2,"to":0,"weight":0.95}]}`
	up, err := http.Post(ts.URL+"/updates", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	up.Body.Close()
	if up.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /updates = %d, want 202", up.StatusCode)
	}

	event, data = readSSE(t, br)
	if event != "topk" {
		t.Fatalf("change event = %q, want topk", event)
	}
	var changed SubscribePush
	if err := json.Unmarshal([]byte(data), &changed); err != nil {
		t.Fatalf("decode change push %q: %v", data, err)
	}
	if changed.Seq == 0 {
		t.Error("change push carries seq 0, want the triggering batch seq")
	}
	if len(changed.Results) != 2 || changed.Results[0].Topic != "beta" {
		t.Fatalf("post-flip ranking = %+v, want beta first of 2", changed.Results)
	}
}

func TestUpdatesValidation(t *testing.T) {
	ts, _ := streamHarness(t, Config{})
	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/updates", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct {
		name string
		body string
	}{
		{"garbage", `{`},
		{"unknown field", `{"updates":[],"nope":1}`},
		{"negative new_nodes", `{"new_nodes":-1}`},
		{"empty", `{"updates":[]}`},
		{"out-of-range node", `{"updates":[{"from":0,"to":99,"weight":0.5}]}`},
		{"self loop", `{"updates":[{"from":1,"to":1,"weight":0.5}]}`},
		{"bad weight", `{"updates":[{"from":0,"to":1,"weight":1.5}]}`},
	}
	for _, c := range cases {
		if code := post(c.body); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", c.name, code)
		}
	}
	// Growing nodes makes previously out-of-range IDs valid in the same
	// request.
	resp, err := http.Post(ts.URL+"/updates", "application/json",
		strings.NewReader(`{"new_nodes":1,"updates":[{"from":3,"to":0,"weight":0.5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("grow+update = %d, want 202", resp.StatusCode)
	}
	var ack UpdateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 1 || ack.NewNodes != 1 {
		t.Errorf("ack = %+v, want 1 accepted, 1 new node", ack)
	}
}

// A server without a pipeline keeps its exact pre-streaming surface:
// the streaming routes do not exist.
func TestStreamingRoutesAbsentWithoutPipeline(t *testing.T) {
	srv, err := testServer()
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/updates", "/subscribe"} {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader("{}"))
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusNotFound {
			t.Errorf("POST %s on static server = %d, want 404", path, rec.Code)
		}
	}
}

func TestSubscribeCapSheds(t *testing.T) {
	ts, _ := streamHarness(t, Config{MaxSubscribers: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/subscribe?q=t&user=0&k=2", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first subscriber = %d, want 200", resp.StatusCode)
	}
	// Consume the initial push so the stream is established.
	readSSE(t, bufio.NewReader(resp.Body))

	second, err := http.Post(ts.URL+"/subscribe?q=t&user=0&k=2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Body.Close()
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second subscriber = %d, want 429", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestSubscribeValidationErrors(t *testing.T) {
	ts, _ := streamHarness(t, Config{})
	cases := []struct {
		name string
		path string
		want int
	}{
		{"unknown user", "/subscribe?q=t&user=99&k=2", http.StatusBadRequest},
		{"unrelated query", "/subscribe?q=nosuchtag&user=0&k=2", http.StatusBadRequest},
		{"bad k", "/subscribe?q=t&user=0&k=0", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}
