package server

// HTTP-layer instrumentation (dependency-free, internal/obs). The
// middleware stack records per-route request counts and latency, the
// in-flight gauge, and the failure-mode counters the serving path was
// hardened around in earlier PRs but could not report: shed requests,
// recovered panics, degraded answers, clients gone before the response.

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/plan"
)

// serverMetrics holds the server's obs handles. A Server always has one:
// New substitutes a private registry when Config.Registry is nil, so the
// middleware never nil-checks.
type serverMetrics struct {
	// requests counts finished requests by route and final status code;
	// latency observes wall time by route.
	requests *obs.CounterVec
	latency  *obs.HistogramVec
	// inflight tracks requests currently inside the handler stack.
	inflight *obs.Gauge
	// shed counts requests rejected 429 by the MaxInflight limiter;
	// panics counts handler panics isolated into a 500; degraded counts
	// searches answered below full fidelity (materialized or stale
	// tier); clientClosed counts requests whose client went away (499).
	shed         *obs.Counter
	panics       *obs.Counter
	degraded     *obs.Counter
	clientClosed *obs.Counter
	// tiers counts /search outcomes by the fidelity tier that served
	// (or, for "unavailable", refused) them. Children are resolved
	// eagerly per tier: the hot path is one atomic add, and every tier
	// exposes from the first scrape. Summing the children equals the
	// number of planned /search requests that got past validation.
	tiers [4]*obs.Counter // indexed by plan.Tier
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	m := &serverMetrics{
		requests: reg.CounterVec("pit_http_requests_total",
			"Finished HTTP requests by route and status code.", "route", "code"),
		latency: reg.HistogramVec("pit_http_request_duration_seconds",
			"HTTP request wall time by route.", obs.DurationBuckets, "route"),
		inflight: reg.Gauge("pit_http_inflight_requests",
			"Requests currently being served."),
		shed: reg.Counter("pit_http_shed_total",
			"Requests shed with 429 by the in-flight limiter."),
		panics: reg.Counter("pit_http_panics_total",
			"Handler panics recovered into a 500."),
		degraded: reg.Counter("pit_http_degraded_total",
			"Searches answered degraded (materialized summaries only) after the request deadline expired."),
		clientClosed: reg.Counter("pit_http_client_closed_total",
			"Requests whose client disconnected before the response (status 499)."),
	}
	tiers := reg.CounterVec("pit_search_tier_total",
		"Planned /search requests by the fidelity tier that served (or refused) them.", "tier")
	for _, t := range plan.Tiers {
		m.tiers[t] = tiers.With(t.String())
	}
	return m
}

// tierServed records one planned search outcome.
func (m *serverMetrics) tierServed(t plan.Tier) { m.tiers[t].Inc() }

// observe records one finished request. Route cardinality is bounded by
// routeLabel; the status-code label is the final code from the recorder.
func (m *serverMetrics) observe(route string, status int, seconds float64) {
	m.requests.With(route, strconv.Itoa(status)).Inc() //pitlint:ignore metrichygiene route comes from routeLabel's const set at every caller; status is an HTTP code from the recorder (bounded by the status space)
	m.latency.With(route).Observe(seconds)             //pitlint:ignore metrichygiene route comes from routeLabel's const set at every caller
	if status == statusClientClosedRequest {
		m.clientClosed.Inc()
	}
}

// routeLabel maps a request path to a bounded label set so arbitrary
// client paths cannot explode the metric cardinality.
func routeLabel(path string) string {
	switch path {
	case "/search", "/topics", "/stats", "/healthz", "/readyz", "/updates", "/subscribe":
		return path
	default:
		return "other"
	}
}
