package storage

// The immutability contract on adopted slices is enforced by hardware
// on the mmap backend: the mapping is PROT_READ, so an accidental write
// through a loaded index faults instead of silently corrupting the
// shared artifact. That fault kills the process, so the test re-execs
// itself and asserts the child dies — the standard pattern for
// must-crash behavior.

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/randwalk"
)

func TestMmapWriteFaults(t *testing.T) {
	if !mmapIsReadOnly {
		t.Skip("mmap backend on this platform loads into writable heap memory")
	}
	const envChild = "STORAGE_FAULT_CHILD"
	if path := os.Getenv(envChild); path != "" {
		// Child: open the mapped artifact and write through an adopted
		// slice. The write must fault; reaching the print is a failure
		// the parent detects.
		ix, h, err := OpenWalkIndex(path)
		if err != nil {
			fmt.Println("child open failed:", err)
			os.Exit(3)
		}
		defer h.Close()
		_, _, _, walks, _, _, _ := ix.Raw()
		if len(walks) == 0 {
			fmt.Println("child: empty walk array")
			os.Exit(3)
		}
		walks[0] = 42
		fmt.Println("write did not fault")
		os.Exit(0)
	}

	ix, err := randwalk.Build(context.Background(), testGraph(t), randwalk.Options{L: 3, R: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "walks.pit")
	if err := SaveWalkIndexV2(path, ix); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestMmapWriteFaults$", "-test.v")
	cmd.Env = append(os.Environ(), envChild+"="+path, "GOTRACEBACK=0")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child survived writing to a mapped index:\n%s", out)
	}
	if strings.Contains(string(out), "write did not fault") {
		t.Fatalf("write to mapped index did not fault:\n%s", out)
	}
}
