package storage

// FuzzLoad drives arbitrary bytes through the auto-detecting load path
// for every artifact kind — covering both the gob (v1) and flat binary
// (v2) envelopes. The contract under fuzzing: a load either succeeds or
// returns a wrapped "storage:" error; it never panics, and (because gob
// reads are bounded by the file size and v2 validates every length
// before slicing) never allocates proportionally to a lied-about
// length. Seeds are freshly encoded artifacts of each kind in each
// format plus truncated and bit-flipped variants, so the fuzzer starts
// at the interesting boundaries instead of rediscovering the magic.

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/propidx"
	"repro/internal/randwalk"
	"repro/internal/summary"
)

func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	dir := f.TempDir()
	g := testGraph(f)
	walkIx, err := randwalk.Build(context.Background(), g, randwalk.Options{L: 3, R: 2, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	propIx, err := propidx.Build(context.Background(), g, propidx.Options{Theta: 0.2})
	if err != nil {
		f.Fatal(err)
	}
	sums := []summary.Summary{
		summary.New(0, []summary.WeightedNode{{Node: 1, Weight: 0.5}, {Node: 4, Weight: 0.5}}),
		summary.New(3, nil),
	}
	saves := []func(string) error{
		func(p string) error { return SaveWalkIndex(p, walkIx) },
		func(p string) error { return SaveWalkIndexV2(p, walkIx) },
		func(p string) error { return SavePropIndex(p, propIx) },
		func(p string) error { return SavePropIndexV2(p, propIx) },
		func(p string) error { return SaveSummaries(p, sums) },
		func(p string) error { return SaveSummariesV2(p, sums) },
	}
	var out [][]byte
	for i, save := range saves {
		p := filepath.Join(dir, "seed.pit")
		if err := save(p); err != nil {
			f.Fatalf("seed %d: %v", i, err)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, data)
	}
	return out
}

func FuzzLoad(f *testing.F) {
	for _, data := range fuzzSeeds(f) {
		for kindSel := byte(0); kindSel < 3; kindSel++ {
			f.Add(kindSel, data)
			f.Add(kindSel, data[:len(data)/2])
			f.Add(kindSel, data[:len(data)-1])
			mut := append([]byte{}, data...)
			mut[len(mut)/3] ^= 0xff
			f.Add(kindSel, mut)
		}
	}
	f.Add(byte(0), []byte{})
	f.Add(byte(1), []byte(magicV2))

	kinds := []string{kindWalks, kindProp, kindSums}
	f.Fuzz(func(t *testing.T, kindSel byte, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		p := filepath.Join(t.TempDir(), "fuzz.pit")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := openByKind(kinds[int(kindSel)%len(kinds)], p); err != nil {
			if !strings.Contains(err.Error(), "storage:") {
				t.Errorf("error not wrapped with storage prefix: %v", err)
			}
		}
	})
}
