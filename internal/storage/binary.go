package storage

// The pitsearch-index-v2 flat binary envelope. Layout:
//
//	header (48 bytes)
//	  [ 0:24)  magic, "pitsearch-index-v2" NUL-padded
//	  [24:32)  kind, NUL-padded ("walks", "prop", "sums")
//	  [32:36)  u32 section count
//	  [36:40)  u32 CRC-32C of the TOC bytes
//	  [40:48)  u64 total file size
//	toc (24 bytes per section, immediately after the header)
//	  [ 0: 4)  u32 section id
//	  [ 4: 8)  u32 CRC-32C of the section bytes
//	  [ 8:16)  u64 section offset from file start
//	  [16:24)  u64 section size in bytes
//	sections (each at an 8-byte-aligned offset, zero-padded between)
//
// All integers little-endian. The header and TOC sizes are multiples of
// 8, and section offsets are aligned up to 8, so every section of
// 8-byte elements can be reinterpreted in place (view.go). Sections are
// identified by id, not position, so a future writer can append new
// sections without breaking old readers; removing or reshaping a
// section is a magic bump. Every parse-side length is validated before
// use and every failure is a wrapped "storage:" error — a truncated,
// corrupt or adversarial file must never panic or allocate
// proportionally to a lied-about length.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/propidx"
	"repro/internal/randwalk"
	"repro/internal/summary"
	"repro/internal/topics"
)

const (
	magicV2      = "pitsearch-index-v2"
	headerSize   = 48
	tocEntrySize = 24

	// maxSections bounds the TOC so a corrupt count cannot drive a
	// large allocation; real files have at most 5 sections.
	maxSections = 1024
)

// Section ids. secMeta is common to all kinds; ids 2..5 are per-kind.
const (
	secMeta uint32 = 1

	secWalksWalks       uint32 = 2 // []int32, flat walk array
	secWalksH           uint32 = 3 // []float64, L rows of N concatenated
	secWalksReachOff    uint32 = 4 // []int32, CSR offsets (N+1)
	secWalksReachStarts uint32 = 5 // []int32, CSR values

	secPropOff       uint32 = 2 // []int32, CSR offsets
	secPropSrc       uint32 = 3 // []int32, source node runs
	secPropProp      uint32 = 4 // []float64, aggregated propagation
	secPropPotential uint32 = 5 // []bool, one byte per entry

	secSumsTopics uint32 = 2 // []int32, topic ids
	secSumsRepOff uint32 = 3 // []int64, rep offsets (count+1)
	secSumsReps   uint32 = 4 // 16-byte records: node i32, pad, weight f64
)

// castagnoli is the CRC-32C polynomial table; hardware-accelerated on
// amd64/arm64, which matters when checksumming multi-GB sections.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// v2Section is one section staged for writing. Data may be chunked
// (e.g. the H rows are separately allocated []float64s) — chunks are
// written back to back as a single section.
type v2Section struct {
	id     uint32
	chunks [][]byte
}

func (s *v2Section) size() uint64 {
	var n uint64
	for _, c := range s.chunks {
		n += uint64(len(c))
	}
	return n
}

// v2Writer stages sections and writes the whole file.
type v2Writer struct {
	kind string
	secs []v2Section
}

func newV2Writer(kind string) *v2Writer {
	return &v2Writer{kind: kind}
}

func (w *v2Writer) add(id uint32, chunks ...[]byte) {
	w.secs = append(w.secs, v2Section{id: id, chunks: chunks})
}

func align8(x uint64) uint64 { return (x + 7) &^ 7 }

// writeTo lays out and writes the file: header, TOC, aligned sections.
func (w *v2Writer) writeTo(out io.Writer) error {
	if len(w.kind) > 8 {
		return fmt.Errorf("storage: kind %q exceeds 8 bytes", w.kind)
	}
	// Lay out sections and checksum them.
	tocEnd := uint64(headerSize + len(w.secs)*tocEntrySize)
	toc := make([]byte, len(w.secs)*tocEntrySize)
	cursor := tocEnd
	for i := range w.secs {
		s := &w.secs[i]
		off := align8(cursor)
		size := s.size()
		crc := crc32.New(castagnoli)
		for _, c := range s.chunks {
			crc.Write(c)
		}
		e := toc[i*tocEntrySize:]
		binary.LittleEndian.PutUint32(e[0:], s.id)
		binary.LittleEndian.PutUint32(e[4:], crc.Sum32())
		binary.LittleEndian.PutUint64(e[8:], off)
		binary.LittleEndian.PutUint64(e[16:], size)
		cursor = off + size
	}
	fileSize := cursor

	var hdr [headerSize]byte
	copy(hdr[0:24], magicV2)
	copy(hdr[24:32], w.kind)
	binary.LittleEndian.PutUint32(hdr[32:], uint32(len(w.secs)))
	binary.LittleEndian.PutUint32(hdr[36:], crc32.Checksum(toc, castagnoli))
	binary.LittleEndian.PutUint64(hdr[40:], fileSize)

	bw := io.Writer(out)
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("storage: write header: %w", err)
	}
	if _, err := bw.Write(toc); err != nil {
		return fmt.Errorf("storage: write toc: %w", err)
	}
	var pad [8]byte
	written := tocEnd
	for i := range w.secs {
		off := binary.LittleEndian.Uint64(toc[i*tocEntrySize+8:])
		if off > written {
			if _, err := bw.Write(pad[:off-written]); err != nil {
				return fmt.Errorf("storage: write padding: %w", err)
			}
			written = off
		}
		for _, c := range w.secs[i].chunks {
			if _, err := bw.Write(c); err != nil {
				return fmt.Errorf("storage: write section %d: %w", w.secs[i].id, err)
			}
			written += uint64(len(c))
		}
	}
	return nil
}

// v2File is a parsed (typically mmap'd) v2 index file. Section slices
// alias the underlying mapping.
type v2File struct {
	kind string
	secs map[uint32][]byte
}

// trimNUL returns the fixed-width header field up to its NUL padding.
func trimNUL(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// paddedFieldIs reports whether b is exactly s followed by NULs — the
// canonical encoding of a fixed-width header field. Stray bytes after
// the NUL are rejected so every header byte has exactly one valid
// value.
func paddedFieldIs(b []byte, s string) bool {
	if len(s) > len(b) || string(b[:len(s)]) != s {
		return false
	}
	for _, c := range b[len(s):] {
		if c != 0 {
			return false
		}
	}
	return true
}

// isV2Magic reports whether data starts with the v2 magic.
func isV2Magic(data []byte) bool {
	if len(data) < 24 {
		return false
	}
	return trimNUL(data[0:24]) == magicV2
}

// parseV2 validates the envelope of a fully loaded v2 file and indexes
// its sections. Every offset and size is checked against len(data)
// before any slicing, and every section's CRC is verified, so a
// truncated or bit-flipped file fails here with a descriptive error.
func parseV2(data []byte, wantKind string) (*v2File, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("storage: file too small for v2 header (%d bytes)", len(data))
	}
	if !paddedFieldIs(data[0:24], magicV2) {
		return nil, fmt.Errorf("storage: not a %s file (magic %q)", magicV2, trimNUL(data[0:24]))
	}
	kind := trimNUL(data[24:32])
	if kind != wantKind {
		return nil, fmt.Errorf("storage: file holds %q, expected %q", kind, wantKind)
	}
	if !paddedFieldIs(data[24:32], kind) {
		return nil, fmt.Errorf("storage: malformed kind field")
	}
	count := binary.LittleEndian.Uint32(data[32:])
	if count > maxSections {
		return nil, fmt.Errorf("storage: section count %d exceeds limit %d", count, maxSections)
	}
	if fileSize := binary.LittleEndian.Uint64(data[40:]); fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("storage: header claims %d bytes, file has %d (truncated?)", fileSize, len(data))
	}
	tocEnd := uint64(headerSize) + uint64(count)*tocEntrySize
	if tocEnd > uint64(len(data)) {
		return nil, fmt.Errorf("storage: file too small for %d-section toc", count)
	}
	toc := data[headerSize:tocEnd]
	if got, want := crc32.Checksum(toc, castagnoli), binary.LittleEndian.Uint32(data[36:]); got != want {
		return nil, fmt.Errorf("storage: toc checksum mismatch (got %08x, want %08x)", got, want)
	}
	// Sections must sit exactly where the writer puts them: contiguous
	// in TOC order, each aligned up to 8 with zero padding between, the
	// file ending at the last section's end. Enforcing the canonical
	// layout means every byte of a valid file is pinned — header fields,
	// CRC'd TOC and sections, and forced-zero padding — so any flipped
	// byte is detected, and overlapping or dangling sections are
	// impossible by construction.
	f := &v2File{kind: kind, secs: make(map[uint32][]byte, count)}
	cursor := tocEnd
	for i := uint32(0); i < count; i++ {
		e := toc[i*tocEntrySize:]
		id := binary.LittleEndian.Uint32(e[0:])
		wantCRC := binary.LittleEndian.Uint32(e[4:])
		off := binary.LittleEndian.Uint64(e[8:])
		size := binary.LittleEndian.Uint64(e[16:])
		if _, dup := f.secs[id]; dup {
			return nil, fmt.Errorf("storage: duplicate section id %d", id)
		}
		if off != align8(cursor) {
			return nil, fmt.Errorf("storage: section %d at offset %d, want %d", id, off, align8(cursor))
		}
		if off > uint64(len(data)) || size > uint64(len(data))-off {
			return nil, fmt.Errorf("storage: section %d out of bounds (offset %d size %d, file %d)", id, off, size, len(data))
		}
		for _, pad := range data[cursor:off] {
			if pad != 0 {
				return nil, fmt.Errorf("storage: nonzero padding before section %d", id)
			}
		}
		sec := data[off : off+size]
		if got := crc32.Checksum(sec, castagnoli); got != wantCRC {
			return nil, fmt.Errorf("storage: section %d checksum mismatch (got %08x, want %08x)", id, got, wantCRC)
		}
		f.secs[id] = sec
		cursor = off + size
	}
	if cursor != uint64(len(data)) {
		return nil, fmt.Errorf("storage: %d trailing bytes after last section", uint64(len(data))-cursor)
	}
	return f, nil
}

// section returns a required section's bytes.
func (f *v2File) section(id uint32) ([]byte, error) {
	sec, ok := f.secs[id]
	if !ok {
		return nil, fmt.Errorf("storage: %s file missing section %d", f.kind, id)
	}
	return sec, nil
}

// metaInt64s decodes the fixed-size meta section into n int64 fields.
func (f *v2File) metaInt64s(n int) ([]int64, error) {
	sec, err := f.section(secMeta)
	if err != nil {
		return nil, err
	}
	if len(sec) != n*8 {
		return nil, fmt.Errorf("storage: %s meta section is %d bytes, want %d", f.kind, len(sec), n*8)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(sec[i*8:]))
	}
	return out, nil
}

// dimOK bounds a dimension read from disk so products of dimensions
// stay within int64 and conversions to int are safe on 64-bit hosts.
func dimOK(v int64) bool { return v >= 0 && v < 1<<31 }

// --- walks ---

func encodeWalksV2(ix *randwalk.Index) *v2Writer {
	l, r, n, walks, h, reachOff, reachStarts := ix.Raw()
	var meta [24]byte
	binary.LittleEndian.PutUint64(meta[0:], uint64(l))
	binary.LittleEndian.PutUint64(meta[8:], uint64(r))
	binary.LittleEndian.PutUint64(meta[16:], uint64(n))
	w := newV2Writer(kindWalks)
	w.add(secMeta, meta[:])
	w.add(secWalksWalks, bytesInt32(walks))
	hChunks := make([][]byte, len(h))
	for j := range h {
		hChunks[j] = bytesFloat64(h[j])
	}
	w.add(secWalksH, hChunks...)
	w.add(secWalksReachOff, bytesInt32(reachOff))
	w.add(secWalksReachStarts, bytesInt32(reachStarts))
	return w
}

func decodeWalksV2(f *v2File) (*randwalk.Index, error) {
	meta, err := f.metaInt64s(3)
	if err != nil {
		return nil, err
	}
	l64, r64, n64 := meta[0], meta[1], meta[2]
	if !dimOK(l64) || !dimOK(r64) || !dimOK(n64) {
		return nil, fmt.Errorf("storage: walks meta out of range (L=%d R=%d N=%d)", l64, r64, n64)
	}
	l, r, n := int(l64), int(r64), int(n64)
	secWalks, err := f.section(secWalksWalks)
	if err != nil {
		return nil, err
	}
	secH, err := f.section(secWalksH)
	if err != nil {
		return nil, err
	}
	secOff, err := f.section(secWalksReachOff)
	if err != nil {
		return nil, err
	}
	secStarts, err := f.section(secWalksReachStarts)
	if err != nil {
		return nil, err
	}
	walks, err := viewInt32(secWalks)
	if err != nil {
		return nil, err
	}
	hFlat, err := viewFloat64(secH)
	if err != nil {
		return nil, err
	}
	if int64(len(hFlat)) != l64*n64 {
		return nil, fmt.Errorf("storage: H section holds %d entries, want %d (L=%d N=%d)", len(hFlat), l64*n64, l, n)
	}
	h := make([][]float64, l)
	for j := range h {
		h[j] = hFlat[j*n : (j+1)*n : (j+1)*n]
	}
	reachOff, err := viewInt32(secOff)
	if err != nil {
		return nil, err
	}
	reachStarts, err := viewInt32(secStarts)
	if err != nil {
		return nil, err
	}
	ix, err := randwalk.Adopt(l, r, n, walks, h, reachOff, reachStarts)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return ix, nil
}

// --- prop ---

func encodePropV2(ix *propidx.Index) *v2Writer {
	theta, off, src, prop, potential := ix.Raw()
	var meta [8]byte
	binary.LittleEndian.PutUint64(meta[0:], math.Float64bits(theta))
	w := newV2Writer(kindProp)
	w.add(secMeta, meta[:])
	w.add(secPropOff, bytesInt32(off))
	w.add(secPropSrc, bytesInt32(src))
	w.add(secPropProp, bytesFloat64(prop))
	w.add(secPropPotential, bytesBool(potential))
	return w
}

func decodePropV2(f *v2File) (*propidx.Index, error) {
	metaSec, err := f.section(secMeta)
	if err != nil {
		return nil, err
	}
	if len(metaSec) != 8 {
		return nil, fmt.Errorf("storage: prop meta section is %d bytes, want 8", len(metaSec))
	}
	theta := math.Float64frombits(binary.LittleEndian.Uint64(metaSec))
	secOff, err := f.section(secPropOff)
	if err != nil {
		return nil, err
	}
	secSrc, err := f.section(secPropSrc)
	if err != nil {
		return nil, err
	}
	secProp, err := f.section(secPropProp)
	if err != nil {
		return nil, err
	}
	secPot, err := f.section(secPropPotential)
	if err != nil {
		return nil, err
	}
	off, err := viewInt32(secOff)
	if err != nil {
		return nil, err
	}
	src, err := viewInt32(secSrc)
	if err != nil {
		return nil, err
	}
	prop, err := viewFloat64(secProp)
	if err != nil {
		return nil, err
	}
	potential, err := viewBool(secPot)
	if err != nil {
		return nil, err
	}
	ix, err := propidx.Adopt(theta, off, src, prop, potential)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return ix, nil
}

// --- sums ---

func encodeSumsV2(sums []summary.Summary) *v2Writer {
	count := len(sums)
	topicIDs := make([]int32, count)
	repOff := make([]int64, count+1)
	var total int
	for i, s := range sums {
		topicIDs[i] = int32(s.Topic)
		repOff[i] = int64(total)
		total += len(s.Reps)
	}
	repOff[count] = int64(total)
	// Encode reps summary by summary so the section is chunked without
	// materializing one giant contiguous buffer.
	repChunks := make([][]byte, count)
	for i, s := range sums {
		repChunks[i] = bytesWeightedNodes(s.Reps)
	}
	var meta [8]byte
	binary.LittleEndian.PutUint64(meta[0:], uint64(count))
	w := newV2Writer(kindSums)
	w.add(secMeta, meta[:])
	w.add(secSumsTopics, bytesInt32(topicIDs))
	w.add(secSumsRepOff, bytesInt64(repOff))
	w.add(secSumsReps, repChunks...)
	return w
}

func decodeSumsV2(f *v2File) ([]summary.Summary, error) {
	meta, err := f.metaInt64s(1)
	if err != nil {
		return nil, err
	}
	count64 := meta[0]
	if !dimOK(count64) {
		return nil, fmt.Errorf("storage: sums count %d out of range", count64)
	}
	count := int(count64)
	secTopics, err := f.section(secSumsTopics)
	if err != nil {
		return nil, err
	}
	secOff, err := f.section(secSumsRepOff)
	if err != nil {
		return nil, err
	}
	secReps, err := f.section(secSumsReps)
	if err != nil {
		return nil, err
	}
	topicIDs, err := viewInt32(secTopics)
	if err != nil {
		return nil, err
	}
	if len(topicIDs) != count {
		return nil, fmt.Errorf("storage: topics section holds %d ids, want %d", len(topicIDs), count)
	}
	repOff, err := viewInt64(secOff)
	if err != nil {
		return nil, err
	}
	if len(repOff) != count+1 {
		return nil, fmt.Errorf("storage: rep offsets section holds %d entries, want %d", len(repOff), count+1)
	}
	reps, err := viewWeightedNodes(secReps)
	if err != nil {
		return nil, err
	}
	if count > 0 && repOff[0] != 0 {
		return nil, fmt.Errorf("storage: rep offsets start at %d, want 0", repOff[0])
	}
	for i := 1; i < len(repOff); i++ {
		if repOff[i] < repOff[i-1] {
			return nil, fmt.Errorf("storage: rep offsets decrease at %d", i)
		}
	}
	if count > 0 && repOff[count] != int64(len(reps)) {
		return nil, fmt.Errorf("storage: rep offsets end at %d, want %d", repOff[count], len(reps))
	}
	sums := make([]summary.Summary, count)
	for i := 0; i < count; i++ {
		s := summary.Adopt(topics.TopicID(topicIDs[i]), reps[repOff[i]:repOff[i+1]:repOff[i+1]])
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("storage: summary %d: %w", i, err)
		}
		sums[i] = s
	}
	return sums, nil
}
