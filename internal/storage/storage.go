// Package storage persists the costly offline artifacts — the random-walk
// index (Algorithm 6; §6.6 reports ~7 hours at full scale), the
// personalized propagation index (Section 5.1) and materialized topic
// summaries — so a deployment builds them once per dataset snapshot and
// reloads them at startup, exactly the amortization argument of §6.6.
//
// Two on-disk formats coexist:
//
//   - gob (v1, "pitsearch-index-v1"): a gob stream; portable and simple,
//     but loading decodes every element and allocates the full index.
//   - flat binary (v2, "pitsearch-index-v2"): the indexes' backing
//     arrays as little-endian machine words behind a checksummed
//     section TOC (binary.go). The read path maps the file and
//     reinterprets sections in place (view.go), so cold start costs
//     page-table setup instead of a full decode.
//
// The Open* functions auto-detect the format and return a Handle that
// owns the mapping; Save* writes gob, Save*V2 writes flat binary. All
// writes go through a temp file plus atomic rename, so a crash mid-save
// never corrupts an existing artifact.
package storage

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/propidx"
	"repro/internal/randwalk"
	"repro/internal/summary"
)

// magicV1 versions the gob envelope so stale files fail loudly.
const magicV1 = "pitsearch-index-v1"

// Artifact kinds. The v2 header's kind field is 8 bytes, so summaries
// are "sums" there; the gob envelope keeps its historical "summaries".
const (
	kindWalks        = "walks"
	kindProp         = "prop"
	kindSums         = "sums"
	kindSummariesGob = "summaries"
)

// Format names an on-disk index format.
type Format string

const (
	// FormatGob is the v1 gob stream.
	FormatGob Format = "gob"
	// FormatV2 is the flat binary mmap-able format.
	FormatV2 Format = "v2"
)

// ParseFormat parses a user-supplied format name (CLI flag values).
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatGob, FormatV2:
		return Format(s), nil
	}
	return "", fmt.Errorf("storage: unknown format %q (want %q or %q)", s, FormatGob, FormatV2)
}

// DetectFormat sniffs the format of an existing artifact from its
// leading bytes. Anything that is not a v2 header is presumed gob — the
// gob loader then reports its own envelope error for garbage files.
func DetectFormat(path string) (Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	var head [24]byte
	n, err := io.ReadFull(f, head[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return "", fmt.Errorf("storage: %w", err)
	}
	if isV2Magic(head[:n]) {
		return FormatV2, nil
	}
	return FormatGob, nil
}

// Handle owns the resources behind a loaded artifact — the file mapping
// on the v2 path, nothing on the gob path. Close is idempotent; after
// it returns, slices adopted from a mapped artifact must no longer be
// accessed (on Linux, access faults). The zero value is a valid no-op
// handle, so gob and v2 loads are interchangeable to callers.
type Handle struct {
	once    sync.Once
	closeFn func() error
	err     error
	mapped  int64
}

// Close releases the mapping (first call only; later calls return the
// first result).
func (h *Handle) Close() error {
	h.once.Do(func() {
		if h.closeFn != nil {
			h.err = h.closeFn()
		}
	})
	return h.err
}

// Mapped returns the number of artifact bytes backing this handle's
// index (0 for gob loads, which copy into the heap).
func (h *Handle) Mapped() int64 { return h.mapped }

// atomicWriteFile writes via a temp file in path's directory and
// renames it into place, so a crash or failed write leaves any existing
// artifact untouched and never exposes a partially written file.
func atomicWriteFile(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err := write(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("storage: flush: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("storage: close: %w", err)
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("storage: rename: %w", err)
	}
	return nil
}

type envelope struct {
	Magic string
	Kind  string
}

func writeFile(path, kind string, payload interface{}) error {
	return atomicWriteFile(path, func(w io.Writer) error {
		enc := gob.NewEncoder(w)
		if err := enc.Encode(envelope{Magic: magicV1, Kind: kind}); err != nil {
			return fmt.Errorf("storage: encode envelope: %w", err)
		}
		if err := enc.Encode(payload); err != nil {
			return fmt.Errorf("storage: encode %s: %w", kind, err)
		}
		return nil
	})
}

func readFile(path, kind string, payload interface{}) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	// Bound the decoder to the file's stated size so a growing or
	// special file cannot feed gob an unbounded stream.
	lr := &io.LimitedReader{R: bufio.NewReader(f), N: st.Size()}
	return read(lr, kind, payload)
}

func read(r io.Reader, kind string, payload interface{}) error {
	dec := gob.NewDecoder(r)
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return fmt.Errorf("storage: decode envelope: %w", err)
	}
	if env.Magic != magicV1 {
		return fmt.Errorf("storage: not a pitsearch index file (magic %q)", env.Magic)
	}
	if env.Kind != kind {
		return fmt.Errorf("storage: file holds %q, expected %q", env.Kind, kind)
	}
	if err := dec.Decode(payload); err != nil {
		return fmt.Errorf("storage: decode %s: %w", kind, err)
	}
	return nil
}

// openV2 maps path and parses its envelope. On success the Handle owns
// the mapping; on any error the mapping is released before returning.
func openV2(path, kind string) (*v2File, *Handle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: %w", err)
	}
	defer f.Close() // the mapping outlives the descriptor
	st, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("storage: %w", err)
	}
	data, closer, err := mapFile(f, st.Size())
	if err != nil {
		return nil, nil, err
	}
	vf, err := parseV2(data, kind)
	if err != nil {
		closer()
		return nil, nil, err
	}
	return vf, &Handle{closeFn: closer, mapped: int64(len(data))}, nil
}

// SaveWalkIndex persists a walk index to path in gob (v1) format.
func SaveWalkIndex(path string, ix *randwalk.Index) error {
	if ix == nil {
		return fmt.Errorf("storage: nil walk index")
	}
	return writeFile(path, kindWalks, ix)
}

// SaveWalkIndexV2 persists a walk index to path in flat binary (v2)
// format, the mmap-able cold-start fast path.
func SaveWalkIndexV2(path string, ix *randwalk.Index) error {
	if ix == nil {
		return fmt.Errorf("storage: nil walk index")
	}
	w := encodeWalksV2(ix)
	return atomicWriteFile(path, w.writeTo)
}

// LoadWalkIndex reads a gob-format walk index from path.
func LoadWalkIndex(path string) (*randwalk.Index, error) {
	ix := new(randwalk.Index)
	if err := readFile(path, kindWalks, ix); err != nil {
		return nil, err
	}
	return ix, nil
}

// OpenWalkIndex reads a walk index from path, auto-detecting the
// format. For v2 files the index's backing arrays are views into the
// returned Handle's mapping: treat them as immutable and keep the
// Handle open for the index's lifetime.
func OpenWalkIndex(path string) (*randwalk.Index, *Handle, error) {
	format, err := DetectFormat(path)
	if err != nil {
		return nil, nil, err
	}
	if format == FormatGob {
		ix, err := LoadWalkIndex(path)
		if err != nil {
			return nil, nil, err
		}
		return ix, &Handle{}, nil
	}
	vf, h, err := openV2(path, kindWalks)
	if err != nil {
		return nil, nil, err
	}
	ix, err := decodeWalksV2(vf)
	if err != nil {
		h.Close()
		return nil, nil, err
	}
	return ix, h, nil
}

// SavePropIndex persists a propagation index to path in gob (v1) format.
func SavePropIndex(path string, ix *propidx.Index) error {
	if ix == nil {
		return fmt.Errorf("storage: nil propagation index")
	}
	return writeFile(path, kindProp, ix)
}

// SavePropIndexV2 persists a propagation index to path in flat binary
// (v2) format.
func SavePropIndexV2(path string, ix *propidx.Index) error {
	if ix == nil {
		return fmt.Errorf("storage: nil propagation index")
	}
	w := encodePropV2(ix)
	return atomicWriteFile(path, w.writeTo)
}

// LoadPropIndex reads a gob-format propagation index from path.
func LoadPropIndex(path string) (*propidx.Index, error) {
	ix := new(propidx.Index)
	if err := readFile(path, kindProp, ix); err != nil {
		return nil, err
	}
	return ix, nil
}

// OpenPropIndex reads a propagation index from path, auto-detecting the
// format; see OpenWalkIndex for the Handle contract.
func OpenPropIndex(path string) (*propidx.Index, *Handle, error) {
	format, err := DetectFormat(path)
	if err != nil {
		return nil, nil, err
	}
	if format == FormatGob {
		ix, err := LoadPropIndex(path)
		if err != nil {
			return nil, nil, err
		}
		return ix, &Handle{}, nil
	}
	vf, h, err := openV2(path, kindProp)
	if err != nil {
		return nil, nil, err
	}
	ix, err := decodePropV2(vf)
	if err != nil {
		h.Close()
		return nil, nil, err
	}
	return ix, h, nil
}

// SaveSummaries persists a batch of materialized topic summaries (the
// topic-to-representative index of Figures 15–16) in gob (v1) format.
func SaveSummaries(path string, sums []summary.Summary) error {
	return writeFile(path, kindSummariesGob, sums)
}

// SaveSummariesV2 persists a summary batch in flat binary (v2) format.
func SaveSummariesV2(path string, sums []summary.Summary) error {
	w := encodeSumsV2(sums)
	return atomicWriteFile(path, w.writeTo)
}

// LoadSummaries reads a gob-format summary batch from path.
func LoadSummaries(path string) ([]summary.Summary, error) {
	var sums []summary.Summary
	if err := readFile(path, kindSummariesGob, &sums); err != nil {
		return nil, err
	}
	return sums, nil
}

// OpenSummaries reads a summary batch from path, auto-detecting the
// format; see OpenWalkIndex for the Handle contract.
func OpenSummaries(path string) ([]summary.Summary, *Handle, error) {
	format, err := DetectFormat(path)
	if err != nil {
		return nil, nil, err
	}
	if format == FormatGob {
		sums, err := LoadSummaries(path)
		if err != nil {
			return nil, nil, err
		}
		return sums, &Handle{}, nil
	}
	vf, h, err := openV2(path, kindSums)
	if err != nil {
		return nil, nil, err
	}
	sums, err := decodeSumsV2(vf)
	if err != nil {
		h.Close()
		return nil, nil, err
	}
	return sums, h, nil
}
