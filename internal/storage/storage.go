// Package storage persists the costly offline artifacts — the random-walk
// index (Algorithm 6; §6.6 reports ~7 hours at full scale), the
// personalized propagation index (Section 5.1) and materialized topic
// summaries — so a deployment builds them once per dataset snapshot and
// reloads them at startup, exactly the amortization argument of §6.6.
package storage

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/propidx"
	"repro/internal/randwalk"
	"repro/internal/summary"
)

// magic versions the on-disk envelope so stale files fail loudly.
const magic = "pitsearch-index-v1"

type envelope struct {
	Magic string
	Kind  string
}

func writeFile(path, kind string, payload interface{}) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(envelope{Magic: magic, Kind: kind}); err != nil {
		return fmt.Errorf("storage: encode envelope: %w", err)
	}
	if err := enc.Encode(payload); err != nil {
		return fmt.Errorf("storage: encode %s: %w", kind, err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("storage: flush: %w", err)
	}
	return f.Sync()
}

func readFile(path, kind string, payload interface{}) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	return read(bufio.NewReader(f), kind, payload)
}

func read(r io.Reader, kind string, payload interface{}) error {
	dec := gob.NewDecoder(r)
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return fmt.Errorf("storage: decode envelope: %w", err)
	}
	if env.Magic != magic {
		return fmt.Errorf("storage: not a pitsearch index file (magic %q)", env.Magic)
	}
	if env.Kind != kind {
		return fmt.Errorf("storage: file holds %q, expected %q", env.Kind, kind)
	}
	if err := dec.Decode(payload); err != nil {
		return fmt.Errorf("storage: decode %s: %w", kind, err)
	}
	return nil
}

// SaveWalkIndex persists a walk index to path.
func SaveWalkIndex(path string, ix *randwalk.Index) error {
	if ix == nil {
		return fmt.Errorf("storage: nil walk index")
	}
	return writeFile(path, "walks", ix)
}

// LoadWalkIndex reads a walk index from path.
func LoadWalkIndex(path string) (*randwalk.Index, error) {
	ix := new(randwalk.Index)
	if err := readFile(path, "walks", ix); err != nil {
		return nil, err
	}
	return ix, nil
}

// SavePropIndex persists a propagation index to path.
func SavePropIndex(path string, ix *propidx.Index) error {
	if ix == nil {
		return fmt.Errorf("storage: nil propagation index")
	}
	return writeFile(path, "prop", ix)
}

// LoadPropIndex reads a propagation index from path.
func LoadPropIndex(path string) (*propidx.Index, error) {
	ix := new(propidx.Index)
	if err := readFile(path, "prop", ix); err != nil {
		return nil, err
	}
	return ix, nil
}

// SaveSummaries persists a batch of materialized topic summaries (the
// topic-to-representative index of Figures 15–16).
func SaveSummaries(path string, sums []summary.Summary) error {
	return writeFile(path, "summaries", sums)
}

// LoadSummaries reads a summary batch from path.
func LoadSummaries(path string) ([]summary.Summary, error) {
	var sums []summary.Summary
	if err := readFile(path, "summaries", &sums); err != nil {
		return nil, err
	}
	return sums, nil
}
