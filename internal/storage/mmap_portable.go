//go:build !linux

package storage

// Portable fallback for hosts without the Linux mmap backend: the file
// is read into an ordinary heap slice. Loads still benefit from the
// flat format's zero-parse views — only demand paging and the
// write-fault guarantee are lost (mmapIsReadOnly is false, so the
// fault-behavior tests skip here).

import (
	"fmt"
	"io"
	"math"
	"os"
)

const mmapIsReadOnly = false

// mapFile reads size bytes of f into memory. The closer is a no-op
// (the heap slice is garbage-collected).
func mapFile(f *os.File, size int64) (data []byte, closer func() error, err error) {
	if size < 0 || size > math.MaxInt {
		return nil, nil, fmt.Errorf("storage: cannot load %d-byte file", size)
	}
	data = make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, fmt.Errorf("storage: read: %w", err)
	}
	return data, func() error { return nil }, nil
}
