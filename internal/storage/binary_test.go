package storage

// Tests for the flat binary v2 format: round trips over both the
// zero-copy and copying view paths, auto-detecting Open*, and the
// robustness battery — truncation at every section boundary, bit
// flips under every CRC, and envelope lies (bad magic, kind, counts,
// offsets). A corrupt artifact must produce a wrapped "storage:"
// error, never a panic.

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/propidx"
	"repro/internal/randwalk"
	"repro/internal/summary"
)

func buildWalks(t testing.TB) *randwalk.Index {
	t.Helper()
	ix, err := randwalk.Build(context.Background(), testGraph(t), randwalk.Options{L: 4, R: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func buildProp(t testing.TB) *propidx.Index {
	t.Helper()
	ix, err := propidx.Build(context.Background(), testGraph(t), propidx.Options{Theta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func testSums() []summary.Summary {
	return []summary.Summary{
		summary.New(0, []summary.WeightedNode{{Node: 3, Weight: 0.5}, {Node: 7, Weight: 0.25}}),
		summary.New(2, nil),
		summary.New(5, []summary.WeightedNode{{Node: 1, Weight: 1}}),
	}
}

// forceCopy runs f with the zero-copy views disabled, so the portable
// decode path is exercised on little-endian hosts too.
func forceCopy(t *testing.T, f func(t *testing.T)) {
	old := forceCopyViews
	forceCopyViews = true
	defer func() { forceCopyViews = old }()
	f(t)
}

func sameWalks(t *testing.T, a, b *randwalk.Index) {
	t.Helper()
	if a.L != b.L || a.R != b.R || a.NumNodes() != b.NumNodes() {
		t.Fatalf("header mismatch: %d/%d/%d vs %d/%d/%d", a.L, a.R, a.NumNodes(), b.L, b.R, b.NumNodes())
	}
	for w := 0; w < a.NumNodes(); w++ {
		for i := 0; i < a.R; i++ {
			wa, wb := a.Walk(i, graph.NodeID(w)), b.Walk(i, graph.NodeID(w))
			if len(wa) != len(wb) {
				t.Fatalf("walk(%d,%d) length differs", i, w)
			}
			for j := range wa {
				if wa[j] != wb[j] {
					t.Fatalf("walk(%d,%d)[%d] differs", i, w, j)
				}
			}
		}
		ra, rb := a.ReachL(graph.NodeID(w)), b.ReachL(graph.NodeID(w))
		if len(ra) != len(rb) {
			t.Fatalf("ReachL(%d) length differs", w)
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("ReachL(%d)[%d] differs", w, j)
			}
		}
	}
	for j := 1; j <= a.L; j++ {
		for v := 0; v < a.NumNodes(); v++ {
			if a.VisitFreq(j, graph.NodeID(v)) != b.VisitFreq(j, graph.NodeID(v)) {
				t.Fatalf("H[%d][%d] differs", j, v)
			}
		}
	}
}

func sameProp(t *testing.T, a, b *propidx.Index) {
	t.Helper()
	if a.Theta() != b.Theta() || a.Size() != b.Size() || a.NumNodes() != b.NumNodes() {
		t.Fatal("header mismatch")
	}
	for v := 0; v < a.NumNodes(); v++ {
		s1, p1, m1 := a.Gamma(graph.NodeID(v))
		s2, p2, m2 := b.Gamma(graph.NodeID(v))
		if len(s1) != len(s2) {
			t.Fatalf("Gamma(%d) length differs", v)
		}
		for i := range s1 {
			if s1[i] != s2[i] || p1[i] != p2[i] || m1[i] != m2[i] {
				t.Fatalf("Gamma(%d)[%d] differs", v, i)
			}
		}
	}
}

func TestWalkIndexV2RoundTrip(t *testing.T) {
	ix := buildWalks(t)
	path := filepath.Join(t.TempDir(), "walks.pit")
	if err := SaveWalkIndexV2(path, ix); err != nil {
		t.Fatal(err)
	}
	if f, err := DetectFormat(path); err != nil || f != FormatV2 {
		t.Fatalf("DetectFormat = %v, %v", f, err)
	}
	got, h, err := OpenWalkIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if mmapIsReadOnly && h.Mapped() == 0 {
		t.Error("v2 open reports no mapped bytes")
	}
	sameWalks(t, ix, got)

	forceCopy(t, func(t *testing.T) {
		got2, h2, err := OpenWalkIndex(path)
		if err != nil {
			t.Fatal(err)
		}
		defer h2.Close()
		sameWalks(t, ix, got2)
	})
}

func TestPropIndexV2RoundTrip(t *testing.T) {
	ix := buildProp(t)
	path := filepath.Join(t.TempDir(), "prop.pit")
	if err := SavePropIndexV2(path, ix); err != nil {
		t.Fatal(err)
	}
	got, h, err := OpenPropIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	sameProp(t, ix, got)

	forceCopy(t, func(t *testing.T) {
		got2, h2, err := OpenPropIndex(path)
		if err != nil {
			t.Fatal(err)
		}
		defer h2.Close()
		sameProp(t, ix, got2)
	})
}

func TestSummariesV2RoundTrip(t *testing.T) {
	sums := testSums()
	path := filepath.Join(t.TempDir(), "sums.pit")
	if err := SaveSummariesV2(path, sums); err != nil {
		t.Fatal(err)
	}
	check := func(t *testing.T) {
		got, h, err := OpenSummaries(path)
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		if len(got) != len(sums) {
			t.Fatalf("got %d summaries, want %d", len(got), len(sums))
		}
		for i := range sums {
			if got[i].Topic != sums[i].Topic || got[i].Len() != sums[i].Len() {
				t.Fatalf("summary %d header differs: %+v vs %+v", i, got[i], sums[i])
			}
			for j, r := range sums[i].Reps {
				if got[i].Reps[j] != r {
					t.Fatalf("summary %d rep %d differs", i, j)
				}
			}
		}
	}
	check(t)
	forceCopy(t, check)
}

func TestSummariesV2RoundTripEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sums.pit")
	if err := SaveSummariesV2(path, nil); err != nil {
		t.Fatal(err)
	}
	got, h, err := OpenSummaries(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if len(got) != 0 {
		t.Fatalf("got %d summaries, want 0", len(got))
	}
}

// Open* must also serve gob files transparently (format auto-detect),
// returning a usable no-op handle.
func TestOpenAutoDetectsGob(t *testing.T) {
	ix := buildWalks(t)
	path := filepath.Join(t.TempDir(), "walks.gob")
	if err := SaveWalkIndex(path, ix); err != nil {
		t.Fatal(err)
	}
	if f, err := DetectFormat(path); err != nil || f != FormatGob {
		t.Fatalf("DetectFormat = %v, %v", f, err)
	}
	got, h, err := OpenWalkIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Mapped() != 0 {
		t.Errorf("gob load reports %d mapped bytes", h.Mapped())
	}
	if err := h.Close(); err != nil {
		t.Errorf("gob handle close: %v", err)
	}
	if err := h.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	sameWalks(t, ix, got)
}

func TestV2KindMismatchRejected(t *testing.T) {
	ix := buildWalks(t)
	path := filepath.Join(t.TempDir(), "walks.pit")
	if err := SaveWalkIndexV2(path, ix); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenPropIndex(path); err == nil || !strings.Contains(err.Error(), "expected") {
		t.Errorf("walk file opened as prop index: %v", err)
	}
}

func TestParseFormat(t *testing.T) {
	if f, err := ParseFormat("gob"); err != nil || f != FormatGob {
		t.Errorf("ParseFormat(gob) = %v, %v", f, err)
	}
	if f, err := ParseFormat("v2"); err != nil || f != FormatV2 {
		t.Errorf("ParseFormat(v2) = %v, %v", f, err)
	}
	if _, err := ParseFormat("zip"); err == nil {
		t.Error("unknown format accepted")
	}
}

// saveAllV2 writes one artifact of each kind and returns their paths.
func saveAllV2(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	paths := map[string]string{
		kindWalks: filepath.Join(dir, "walks.pit"),
		kindProp:  filepath.Join(dir, "prop.pit"),
		kindSums:  filepath.Join(dir, "sums.pit"),
	}
	if err := SaveWalkIndexV2(paths[kindWalks], buildWalks(t)); err != nil {
		t.Fatal(err)
	}
	if err := SavePropIndexV2(paths[kindProp], buildProp(t)); err != nil {
		t.Fatal(err)
	}
	if err := SaveSummariesV2(paths[kindSums], testSums()); err != nil {
		t.Fatal(err)
	}
	return paths
}

// openByKind loads path as its kind; every failure must be an error,
// never a panic.
func openByKind(kind, path string) error {
	var err error
	var h *Handle
	switch kind {
	case kindWalks:
		_, h, err = OpenWalkIndex(path)
	case kindProp:
		_, h, err = OpenPropIndex(path)
	case kindSums:
		_, _, err = OpenSummaries(path)
	}
	if h != nil {
		h.Close()
	}
	return err
}

// Truncating a v2 file at every prefix length around structural
// boundaries (header, TOC, each section edge) must always produce a
// "storage:" error.
func TestV2TruncationRejected(t *testing.T) {
	for kind, path := range saveAllV2(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Every prefix for the envelope region, then the bytes around
		// each 8-aligned boundary through the rest of the file.
		cuts := map[int]bool{}
		for i := 0; i < len(data) && i <= 256; i++ {
			cuts[i] = true
		}
		for off := 256; off < len(data); off += 8 {
			cuts[off] = true
			cuts[off+1] = true
		}
		cuts[len(data)-1] = true
		dir := t.TempDir()
		for cut := range cuts {
			if cut >= len(data) {
				continue
			}
			p := filepath.Join(dir, "trunc.pit")
			if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			if err := openByKind(kind, p); err == nil {
				t.Errorf("%s truncated at %d/%d accepted", kind, cut, len(data))
			} else if !strings.Contains(err.Error(), "storage:") {
				t.Errorf("%s truncated at %d: error not wrapped: %v", kind, cut, err)
			}
		}
	}
}

// Flipping any single byte must be caught by a CRC (or a validation
// check downstream of it) — sampled across the file to keep runtime
// reasonable.
func TestV2BitFlipRejected(t *testing.T) {
	for kind, path := range saveAllV2(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		for off := 0; off < len(data); off += 7 {
			mut := append([]byte{}, data...)
			mut[off] ^= 0x41
			p := filepath.Join(dir, "flip.pit")
			if err := os.WriteFile(p, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := openByKind(kind, p); err == nil {
				t.Errorf("%s with byte %d flipped accepted", kind, off)
			}
		}
	}
}

func TestV2GarbageRejected(t *testing.T) {
	dir := t.TempDir()
	cases := [][]byte{
		nil,
		[]byte("x"),
		[]byte(magicV2),
		append([]byte(magicV2), make([]byte, 100)...),
	}
	for i, data := range cases {
		p := filepath.Join(dir, "garbage.pit")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, kind := range []string{kindWalks, kindProp, kindSums} {
			if err := openByKind(kind, p); err == nil {
				t.Errorf("garbage case %d accepted as %s", i, kind)
			}
		}
	}
}

// A failed save must leave any existing artifact untouched: writes land
// in a temp file that is renamed only on success.
func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "walks.pit")
	ix := buildWalks(t)
	if err := SaveWalkIndexV2(path, ix); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write: an atomicWriteFile whose payload
	// writer fails partway (as a dying process would leave it).
	wantErr := os.ErrClosed
	err = atomicWriteFile(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return wantErr
	})
	if err == nil {
		t.Fatal("failed write reported success")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed save corrupted the existing artifact")
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "walks.pit" {
			t.Errorf("leftover temp file %q after failed save", e.Name())
		}
	}
	// And the surviving artifact still loads.
	got, h, err := OpenWalkIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	sameWalks(t, ix, got)
}

// Gob saves share the same temp-and-rename path.
func TestGobSaveIsAtomicOnNewFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sums.gob")
	if err := SaveSummaries(path, testSums()); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "sums.gob" {
		t.Fatalf("unexpected directory contents after save: %v", entries)
	}
}
