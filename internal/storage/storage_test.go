package storage

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/propidx"
	"repro/internal/randwalk"
	"repro/internal/summary"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(6))
	b := graph.NewBuilder(60)
	for i := 0; i < 240; i++ {
		u, v := graph.NodeID(rng.Intn(60)), graph.NodeID(rng.Intn(60))
		if u == v {
			continue
		}
		b.MustAddEdge(u, v, 0.1+0.8*rng.Float64())
	}
	return b.Build()
}

func TestWalkIndexRoundTrip(t *testing.T) {
	g := testGraph(t)
	ix, err := randwalk.Build(context.Background(), g, randwalk.Options{L: 4, R: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "walks.gob")
	if err := SaveWalkIndex(path, ix); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWalkIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.L != ix.L || got.R != ix.R || got.NumNodes() != ix.NumNodes() {
		t.Fatalf("header mismatch: %d/%d/%d vs %d/%d/%d", got.L, got.R, got.NumNodes(), ix.L, ix.R, ix.NumNodes())
	}
	for w := 0; w < g.NumNodes(); w++ {
		for i := 0; i < ix.R; i++ {
			a, b := ix.Walk(i, graph.NodeID(w)), got.Walk(i, graph.NodeID(w))
			if len(a) != len(b) {
				t.Fatalf("walk(%d,%d) length differs", i, w)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("walk(%d,%d)[%d] differs", i, w, j)
				}
			}
		}
		ra, rb := ix.ReachL(graph.NodeID(w)), got.ReachL(graph.NodeID(w))
		if len(ra) != len(rb) {
			t.Fatalf("ReachL(%d) length differs", w)
		}
	}
	for j := 1; j <= ix.L; j++ {
		for v := 0; v < g.NumNodes(); v++ {
			if ix.VisitFreq(j, graph.NodeID(v)) != got.VisitFreq(j, graph.NodeID(v)) {
				t.Fatalf("H[%d][%d] differs", j, v)
			}
		}
	}
}

func TestPropIndexRoundTrip(t *testing.T) {
	g := testGraph(t)
	ix, err := propidx.Build(context.Background(), g, propidx.Options{Theta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "prop.gob")
	if err := SavePropIndex(path, ix); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPropIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Theta() != ix.Theta() || got.Size() != ix.Size() {
		t.Fatalf("header mismatch: θ=%v size=%d vs θ=%v size=%d", got.Theta(), got.Size(), ix.Theta(), ix.Size())
	}
	for v := 0; v < g.NumNodes(); v++ {
		s1, p1, m1 := ix.Gamma(graph.NodeID(v))
		s2, p2, m2 := got.Gamma(graph.NodeID(v))
		if len(s1) != len(s2) {
			t.Fatalf("Gamma(%d) length differs", v)
		}
		for i := range s1 {
			if s1[i] != s2[i] || p1[i] != p2[i] || m1[i] != m2[i] {
				t.Fatalf("Gamma(%d)[%d] differs", v, i)
			}
		}
	}
}

func TestSummariesRoundTrip(t *testing.T) {
	sums := []summary.Summary{
		summary.New(0, []summary.WeightedNode{{Node: 3, Weight: 0.5}, {Node: 7, Weight: 0.5}}),
		summary.New(2, nil),
	}
	path := filepath.Join(t.TempDir(), "sums.gob")
	if err := SaveSummaries(path, sums); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSummaries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Topic != 0 || got[1].Topic != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	if got[0].Weight(3) != 0.5 {
		t.Errorf("weight lost: %+v", got[0])
	}
}

func TestKindMismatchRejected(t *testing.T) {
	g := testGraph(t)
	walks, _ := randwalk.Build(context.Background(), g, randwalk.Options{L: 2, R: 2, Seed: 1})
	path := filepath.Join(t.TempDir(), "walks.gob")
	if err := SaveWalkIndex(path, walks); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPropIndex(path); err == nil {
		t.Error("loading walk file as prop index succeeded")
	}
}

func TestCorruptFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.gob")
	if err := os.WriteFile(path, []byte("not gob at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWalkIndex(path); err == nil {
		t.Error("corrupt file accepted")
	}
	if _, err := LoadWalkIndex(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSaveNilRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.gob")
	if err := SaveWalkIndex(path, nil); err == nil {
		t.Error("nil walk index accepted")
	}
	if err := SavePropIndex(path, nil); err == nil {
		t.Error("nil prop index accepted")
	}
}
