//go:build linux

package storage

// Linux mmap backend for the v2 read path: the file is mapped
// PROT_READ/MAP_SHARED, so loading costs page-table setup instead of
// read+copy, untouched index regions are paged in on demand, and the
// kernel can share the pages across processes serving the same
// artifact. PROT_READ also makes the immutability contract of the
// adopted slices mechanical: a stray write through a loaded index
// faults (SIGSEGV) instead of silently corrupting the artifact.

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mmapIsReadOnly reports whether mapFile yields write-protected memory;
// tests that assert the fault behavior skip where it does not.
const mmapIsReadOnly = true

// mapFile maps size bytes of f read-only. The returned closer unmaps;
// after it runs, any access through slices into data faults.
func mapFile(f *os.File, size int64) (data []byte, closer func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size < 0 || size > math.MaxInt {
		return nil, nil, fmt.Errorf("storage: cannot map %d-byte file", size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: mmap: %w", err)
	}
	return data, func() error {
		if err := syscall.Munmap(data); err != nil {
			return fmt.Errorf("storage: munmap: %w", err)
		}
		return nil
	}, nil
}
