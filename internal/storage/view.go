package storage

// The zero-copy reinterpret seam. A v2 index file holds the backing
// arrays of the offline indexes as raw little-endian machine words,
// 8-byte aligned; on a little-endian host the loaded (usually mmap'd)
// byte sections are reinterpreted in place as []int32 / []int64 /
// []float64 / []summary.WeightedNode views, so loading costs slice
// headers instead of element-wise decoding and the data stays
// demand-paged. This file is the only place in the module allowed to
// use package unsafe (enforced by the unsafeslice analyzer); everything
// above it sees ordinary slices documented as immutable.
//
// Every view has a copying fallback (explicit binary.LittleEndian
// decoding) used when the host is big-endian, when a section is
// misaligned, or when the struct layout assertion fails — so the format
// is portable even where the fast path is unavailable. Tests force the
// fallback via forceCopyViews to keep it covered.

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"repro/internal/summary"
)

// hostLittleEndian reports whether the running machine stores words
// little-endian — the v2 on-disk byte order, and the precondition for
// reinterpreting file bytes as typed slices.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// weightedNodeLayoutOK asserts the memory layout the reps section
// mirrors: WeightedNode is 16 bytes with Node at offset 0 and Weight at
// offset 8 (int32, 4 bytes padding, float64). Go guarantees field order
// and alignment but not padding placement in general, so the zero-copy
// view is gated on this check and falls back to copying otherwise.
var weightedNodeLayoutOK = unsafe.Sizeof(summary.WeightedNode{}) == 16 &&
	unsafe.Offsetof(summary.WeightedNode{}.Node) == 0 &&
	unsafe.Offsetof(summary.WeightedNode{}.Weight) == 8

// forceCopyViews makes every view take the copying fallback; set by
// tests so the portable path stays exercised on little-endian hosts.
var forceCopyViews = false

// zeroCopyOK reports whether b may be reinterpreted in place as a slice
// of elemSize-byte elements.
func zeroCopyOK(b []byte, elemSize int) bool {
	if forceCopyViews || !hostLittleEndian || len(b) == 0 {
		return false
	}
	return uintptr(unsafe.Pointer(&b[0]))%uintptr(elemSize) == 0
}

// viewInt32 returns b as []int32, zero-copy when possible.
func viewInt32(b []byte) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("storage: int32 section size %d not a multiple of 4", len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return []int32{}, nil
	}
	if zeroCopyOK(b, 4) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// viewInt64 returns b as []int64, zero-copy when possible.
func viewInt64(b []byte) ([]int64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("storage: int64 section size %d not a multiple of 8", len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return []int64{}, nil
	}
	if zeroCopyOK(b, 8) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// viewFloat64 returns b as []float64 (raw IEEE-754 bits), zero-copy
// when possible.
func viewFloat64(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("storage: float64 section size %d not a multiple of 8", len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return []float64{}, nil
	}
	if zeroCopyOK(b, 8) {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// viewBool returns b as []bool. Every byte must be 0 or 1: a Go bool
// with any other bit pattern has undefined comparison behavior, so the
// load rejects such sections instead of reinterpreting them.
func viewBool(b []byte) ([]bool, error) {
	for i, v := range b {
		if v > 1 {
			return nil, fmt.Errorf("storage: bool section byte %d holds %d, want 0 or 1", i, v)
		}
	}
	if len(b) == 0 {
		return []bool{}, nil
	}
	if !forceCopyViews {
		return unsafe.Slice((*bool)(unsafe.Pointer(&b[0])), len(b)), nil
	}
	out := make([]bool, len(b))
	for i, v := range b {
		out[i] = v == 1
	}
	return out, nil
}

// viewWeightedNodes returns b as []summary.WeightedNode. On-disk record
// layout: node int32 LE at +0, 4 zero bytes, weight float64 bits LE at
// +8 — exactly the gc memory layout asserted by weightedNodeLayoutOK,
// so the fast path is a reinterpret and the fallback decodes records.
func viewWeightedNodes(b []byte) ([]summary.WeightedNode, error) {
	if len(b)%16 != 0 {
		return nil, fmt.Errorf("storage: reps section size %d not a multiple of 16", len(b))
	}
	n := len(b) / 16
	if n == 0 {
		return []summary.WeightedNode{}, nil
	}
	if zeroCopyOK(b, 8) && weightedNodeLayoutOK {
		return unsafe.Slice((*summary.WeightedNode)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]summary.WeightedNode, n)
	for i := range out {
		rec := b[i*16:]
		out[i] = summary.WeightedNode{
			Node:   int32(binary.LittleEndian.Uint32(rec)),
			Weight: math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
		}
	}
	return out, nil
}

// bytesInt32 returns s's memory as bytes for writing, zero-copy on a
// little-endian host (the write path's symmetric fast path); the
// fallback encodes explicitly.
func bytesInt32(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian && !forceCopyViews {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	out := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

// bytesInt64 is bytesInt32 for []int64.
func bytesInt64(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian && !forceCopyViews {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	out := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

// bytesFloat64 is bytesInt32 for []float64 (raw IEEE-754 bits).
func bytesFloat64(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian && !forceCopyViews {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	out := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// bytesBool returns s's memory as bytes. The gc compiler stores bool as
// one byte holding exactly 0 or 1 (assignments of true/false produce no
// other pattern), so the memory image is deterministic; viewBool
// re-validates the 0/1 invariant on every load regardless.
func bytesBool(s []bool) []byte {
	if len(s) == 0 {
		return nil
	}
	if !forceCopyViews {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s))
	}
	out := make([]byte, len(s))
	for i, v := range s {
		if v {
			out[i] = 1
		}
	}
	return out
}

// bytesWeightedNodes encodes reps as 16-byte on-disk records. Always a
// copying encode, never a struct memcpy: Go does not define the content
// of padding bytes, and writing uninitialized padding would make two
// saves of identical data differ — breaking CRC reproducibility and
// leaking heap bytes into artifacts.
func bytesWeightedNodes(s []summary.WeightedNode) []byte {
	out := make([]byte, len(s)*16)
	for i, r := range s {
		rec := out[i*16:]
		binary.LittleEndian.PutUint32(rec, uint32(r.Node))
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(r.Weight))
	}
	return out
}
