// Package ctxloop enforces the PR-1 cancellation contract on the
// paper's heavy kernels: a function that accepts a context.Context and
// then runs a loop doing real work (random-walk sampling, LRW power
// iteration, set-enumeration search, propagation indexing) must observe
// cancellation inside that loop — otherwise a cancelled request keeps
// burning CPU until the loop drains naturally, defeating the serving
// stack's deadlines and load shedding.
//
// A loop is "heavy" when its subtree contains at least one call that is
// neither a builtin nor a type conversion. A heavy loop passes when its
// subtree is "checked": it calls ctx.Err(), selects or receives on
// ctx.Done(), passes a context.Context to any call, or calls a
// same-package helper that is itself checked (resolved transitively).
// Light loops — pure arithmetic over slices — are exempt: a ctx check
// every iteration would dominate their cost, and PR 1 established the
// stride-checking idiom for those instead.
package ctxloop

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// scopeDirs are the packages that implement the paper's expensive
// kernels (sampling §4, LRW summarization §3, search §5, baselines'
// shared propagation index). Cheap leaf packages (graph, summary,
// storage) are out of scope.
var scopeDirs = []string{
	"internal/lrw",
	"internal/rcl",
	"internal/search",
	"internal/propidx",
	"internal/randwalk",
}

var Analyzer = &analysis.Analyzer{
	Name: "ctxloop",
	Doc: "ctxloop: heavy loops in context-aware kernel functions must observe cancellation\n\n" +
		"Flags for/range loops that perform non-trivial work inside a function taking a\n" +
		"context.Context but never consult it, so cancelled searches keep consuming CPU.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), scopeDirs...) {
		return nil
	}
	c := &checker{
		pass:  pass,
		decls: map[*types.Func]*ast.FuncDecl{},
		memo:  map[*types.Func]int{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[obj] = fd
			}
		}
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !takesContext(pass.TypesInfo, fd) {
				continue
			}
			c.checkLoops(fd.Name.Name, fd.Body)
		}
	}
	return nil
}

const (
	stateChecking = iota + 1
	stateChecked
	stateUnchecked
)

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func]int
}

// takesContext reports whether fd's signature includes a
// context.Context parameter.
func takesContext(info *types.Info, fd *ast.FuncDecl) bool {
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if analysis.IsContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// checkLoops walks body and reports each outermost heavy loop whose
// subtree never observes cancellation. An unchecked light loop cannot
// contain a heavy one (heaviness is a subtree property), so recursion
// stops at every loop either way.
func (c *checker) checkLoops(fname string, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody ast.Node
		switch loop := n.(type) {
		case *ast.ForStmt:
			loopBody = loop
		case *ast.RangeStmt:
			loopBody = loop
		default:
			return true
		}
		if !c.heavy(loopBody) {
			return false
		}
		if !c.checked(loopBody) {
			c.pass.Reportf(loopBody.Pos(),
				"loop in context-aware function %s does no cancellation check; call ctx.Err(), select on ctx.Done(), or delegate to a context-aware helper so cancelled searches stop burning CPU",
				fname)
		}
		return false
	})
}

// heavy reports whether n's subtree contains at least one real call —
// not a builtin, not a type conversion.
func (c *checker) heavy(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
				return true
			}
		}
		found = true
		return false
	})
	return found
}

// checked reports whether n's subtree observes cancellation.
func (c *checker) checked(n ast.Node) bool {
	ok := false
	ast.Inspect(n, func(n ast.Node) bool {
		if ok {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		// ctx.Err() or ctx.Done() on a context.Context receiver. Done
		// only matters inside <-ctx.Done() or a select, but any
		// appearance of either is taken as intent to observe ctx.
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") &&
				analysis.IsContextType(c.pass.TypesInfo.TypeOf(sel.X)) {
				ok = true
				return false
			}
		}
		// Passing a context to any call delegates the obligation.
		for _, arg := range call.Args {
			if analysis.IsContextType(c.pass.TypesInfo.TypeOf(arg)) {
				ok = true
				return false
			}
		}
		// A same-package helper that checks, checks for its callers.
		if fn := analysis.Callee(c.pass.TypesInfo, call); fn != nil {
			if c.funcChecks(fn) {
				ok = true
				return false
			}
		}
		return true
	})
	return ok
}

// funcChecks reports whether fn (a function declared in this package)
// observes cancellation somewhere in its body, memoized and
// cycle-tolerant (a cycle resolves to "does not check").
func (c *checker) funcChecks(fn *types.Func) bool {
	switch c.memo[fn] {
	case stateChecked:
		return true
	case stateUnchecked, stateChecking:
		return false
	}
	fd, ok := c.decls[fn]
	if !ok || fd.Body == nil {
		c.memo[fn] = stateUnchecked
		return false
	}
	c.memo[fn] = stateChecking
	if c.checked(fd.Body) {
		c.memo[fn] = stateChecked
		return true
	}
	c.memo[fn] = stateUnchecked
	return false
}
