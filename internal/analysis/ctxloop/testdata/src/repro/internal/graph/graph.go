// Package graph stands in for repro/internal/graph: inside the module
// but outside ctxloop's scoped kernel directories, so even a flagrant
// violation produces no finding.
package graph

import "context"

func sink(x int) {}

func unchecked(ctx context.Context, xs []int) {
	for _, x := range xs { // no finding: package out of ctxloop scope
		sink(x)
	}
}
