package a

import "context"

func sink(x int) {}

// A heavy loop with no cancellation check in a ctx-taking function.
func bad(ctx context.Context, xs []int) {
	for _, x := range xs { // want "no cancellation check"
		sink(x)
	}
}

// ctx.Err() inside the loop satisfies the rule.
func goodErr(ctx context.Context, xs []int) error {
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return err
		}
		sink(x)
	}
	return nil
}

// Selecting on ctx.Done() satisfies the rule.
func goodDone(ctx context.Context, xs []int) {
	for _, x := range xs {
		select {
		case <-ctx.Done():
			return
		default:
		}
		sink(x)
	}
}

func helper(ctx context.Context, x int) {}

// Passing ctx onward delegates the obligation.
func goodDelegate(ctx context.Context, xs []int) {
	for _, x := range xs {
		helper(ctx, x)
	}
}

type state struct{ ctx context.Context }

func (s *state) cancelled() bool { return s.ctx.Err() != nil }

// A same-package helper that itself checks satisfies the rule without
// ctx appearing in the loop body.
func goodViaHelper(ctx context.Context, s *state, xs []int) {
	for _, x := range xs {
		if s.cancelled() {
			return
		}
		sink(x)
	}
}

// Light loops (no non-builtin calls) are exempt: a per-iteration check
// would dominate the arithmetic.
func lightLoop(ctx context.Context, xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Builtins and conversions do not make a loop heavy.
func lightBuiltins(ctx context.Context, xs []int) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		out = append(out, float64(x))
	}
	return out
}

// Functions without a ctx parameter are out of reach.
func noCtx(xs []int) {
	for _, x := range xs {
		sink(x)
	}
}

// An explicit suppression with a reason silences the finding.
func suppressed(ctx context.Context, xs []int) {
	//pitlint:ignore ctxloop loop is bounded to the 3 fixed shards
	for _, x := range xs {
		sink(x)
	}
}

// A for-statement (not range) is covered too.
func badFor(ctx context.Context, n int) {
	for i := 0; i < n; i++ { // want "no cancellation check"
		sink(i)
	}
}

// Exposition-shaped code gets no special pass: a ctx-taking scrape
// handler sweeping metric families is a heavy loop like any other.
type metricFamily struct{ name string }

func renderFamily(f metricFamily) {}

func badScrapeSweep(ctx context.Context, fams []metricFamily) {
	for _, f := range fams { // want "no cancellation check"
		renderFamily(f)
	}
}

func goodScrapeSweep(ctx context.Context, fams []metricFamily) error {
	for _, f := range fams {
		if err := ctx.Err(); err != nil {
			return err
		}
		renderFamily(f)
	}
	return nil
}

// The kernels' stride idiom (PR 5): checking ctx only every N iterations
// still places ctx.Err() in the loop's subtree, which satisfies the rule.
func goodStride(ctx context.Context, xs []int) error {
	for i, x := range xs {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		sink(x)
	}
	return nil
}

// A signature-kernel shape: the outer loop carries the stride check while
// the nested inner loop is pure arithmetic — light, so exempt on its own.
func goodSignatureKernel(ctx context.Context, rows [][]uint64) (int, error) {
	total := 0
	for i, row := range rows {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		for _, w := range row {
			total += int(w & 1)
		}
	}
	return total, nil
}

// A stride guard around anything other than a cancellation check does not
// count: the loop is heavy (it calls sink) and never consults ctx.
func badStrideNoCheck(ctx context.Context, xs []int) {
	for i, x := range xs { // want "no cancellation check"
		if i%256 == 0 {
			sink(-x)
		}
		sink(x)
	}
}

// The chaos-wrapper shape (internal/chaos): a fault injector adding
// per-call latency inside a loop must still observe cancellation. A bare
// sleep per iteration never consults ctx — a stuck regime would ignore
// shutdown — so the rule fires.
func sleep(d int) {}

func badChaosLatencyLoop(ctx context.Context, topicIDs []int, latency int) {
	for _, id := range topicIDs { // want "no cancellation check"
		sleep(latency)
		sink(id)
	}
}

// Racing the injected delay against ctx.Done() — the shape
// chaos.Summarizer uses — satisfies the rule.
func goodChaosLatencyLoop(ctx context.Context, topicIDs []int, tick <-chan int) error {
	for _, id := range topicIDs {
		select {
		case <-tick: // injected latency elapsed
		case <-ctx.Done():
			return ctx.Err()
		}
		sink(id)
	}
	return nil
}
