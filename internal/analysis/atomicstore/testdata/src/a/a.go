package a

import "sync/atomic"

type cfgA struct{ n int }
type cfgB struct{ s string }

type goodHolder struct {
	v atomic.Value
}

// One consistent concrete type per slot: fine.
func goodConsistent(h *goodHolder) {
	h.v.Store(&cfgA{n: 1})
	old := h.v.Swap(&cfgA{n: 2})
	_ = old
}

type badHolder struct {
	v atomic.Value
}

// Two concrete types through the same slot panic at runtime.
func badMixedTypes(h *badHolder) {
	h.v.Store(cfgA{n: 1})   // want `atomic.Value v stores inconsistent concrete types`
	h.v.Store(cfgB{s: "x"}) // want `atomic.Value v stores inconsistent concrete types`
}

var global atomic.Value

// CompareAndSwap's old and new participate like stores.
func badGlobalCAS() {
	global.Store(&cfgA{})                   // want `atomic.Value global stores inconsistent concrete types`
	global.CompareAndSwap(&cfgA{}, &cfgB{}) // want `atomic.Value global stores inconsistent concrete types` `atomic.Value global stores inconsistent concrete types`
}

type dynHolder struct {
	v atomic.Value
}

// Interface-typed arguments have no lexically known concrete type and
// are skipped rather than guessed at.
func goodDynamic(h *dynHolder, x any) {
	h.v.Store(x)
}

// --- mixed atomic/plain access ---

type counterHolder struct {
	n     int64
	clean atomic.Int64
}

func badMixedField(c *counterHolder) {
	atomic.AddInt64(&c.n, 1)
	c.n++ // want `n is accessed atomically elsewhere`
}

var hits int64

func badMixedGlobal() int64 {
	atomic.AddInt64(&hits, 1)
	return hits // want `hits is accessed atomically elsewhere`
}

var clean2 int64

// All-atomic access is fine.
func goodAtomicOnly() int64 {
	atomic.AddInt64(&clean2, 1)
	return atomic.LoadInt64(&clean2)
}

// The typed wrappers make the invariant structural: never flagged.
func goodTyped(c *counterHolder) int64 {
	c.clean.Add(1)
	return c.clean.Load()
}

var seq int64

// Init-before-publication is the classic intentional exception.
func suppressedInit() {
	seq = 0 //pitlint:ignore atomicstore initialized before any goroutine can observe it
	atomic.AddInt64(&seq, 1)
}
