package atomicstore_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicstore"
)

func TestAtomicstore(t *testing.T) {
	analysistest.Run(t, "testdata", atomicstore.Analyzer, "a")
}
