// Package atomicstore guards the two atomic-misuse patterns this repo
// has already paid for. First, the PR-3 panic class: atomic.Value
// requires every Store/Swap/CompareAndSwap on the same slot to use one
// consistent concrete type — mixing them panics at runtime
// ("inconsistently typed value"), and the panic arrives on whichever
// goroutine stores second, far from the bug. Second, the mixed-access
// race: a field read/written through sync/atomic functions in one place
// and with plain loads/stores in another has no happens-before
// relationship at the plain sites; the race detector only catches the
// interleavings a test happens to produce.
//
// The first check records, per atomic.Value slot (package-level var or
// struct field), the concrete types stored into it anywhere in the
// package; two distinct types flag every store site. The second records
// fields/vars whose address is passed to a sync/atomic function and then
// flags every plain (non-atomic) use of the same object. The sanctioned
// fix for both is the typed wrappers (atomic.Int64, atomic.Pointer[T],
// atomic.Value behind one concrete holder type), which make the
// invariants structural.
package atomicstore

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// scopeDirs: module-wide. Atomics appear in obs, core, plan and
// singleflight today; the invariant is global.
var scopeDirs = []string{"internal", "cmd"}

var Analyzer = &analysis.Analyzer{
	Name: "atomicstore",
	Doc: "atomicstore: consistent concrete types in atomic.Value; no mixed atomic/plain field access\n\n" +
		"Flags atomic.Value slots that store two different concrete types (Store panics\n" +
		"at runtime on the second type) and fields accessed both through sync/atomic\n" +
		"functions and directly (a data race the typed atomic wrappers make impossible).",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), scopeDirs...) {
		return nil
	}
	checkValueStores(pass)
	checkMixedAccess(pass)
	return nil
}

// isAtomicValue reports whether t is sync/atomic.Value.
func isAtomicValue(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Value"
}

// slotOf identifies the atomic.Value slot behind recv: the types.Var of
// the field or variable the method is called on. Chained selectors
// resolve to the final field; unresolvable receivers (map index, call
// result) return nil and are skipped.
func slotOf(info *types.Info, recv ast.Expr) *types.Var {
	switch recv := ast.Unparen(recv).(type) {
	case *ast.Ident:
		v, _ := info.Uses[recv].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[recv.Sel].(*types.Var)
		return v
	}
	return nil
}

// storeSite is one Store/Swap/CompareAndSwap argument with its resolved
// concrete type.
type storeSite struct {
	pos  ast.Expr
	typ  types.Type
	name string
}

// checkValueStores flags atomic.Value slots storing differing concrete
// types.
func checkValueStores(pass *analysis.Pass) {
	slots := map[*types.Var][]storeSite{}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !isAtomicValue(pass.TypesInfo.TypeOf(sel.X)) {
				return true
			}
			var stored []ast.Expr
			switch sel.Sel.Name {
			case "Store", "Swap":
				if len(call.Args) == 1 {
					stored = call.Args[:1]
				}
			case "CompareAndSwap":
				if len(call.Args) == 2 {
					stored = call.Args // old and new must both be consistent
				}
			default:
				return true
			}
			slot := slotOf(pass.TypesInfo, sel.X)
			if slot == nil {
				return true
			}
			for _, arg := range stored {
				t := pass.TypesInfo.TypeOf(arg)
				if t == nil || isUntypedNil(t) {
					continue
				}
				if _, isIface := t.Underlying().(*types.Interface); isIface {
					continue // dynamic type unknown; out of lexical reach
				}
				slots[slot] = append(slots[slot], storeSite{pos: arg, typ: t, name: t.String()})
			}
			return true
		})
	}
	for slot, sites := range slots {
		names := map[string]bool{}
		for _, s := range sites {
			names[s.name] = true
		}
		if len(names) < 2 {
			continue
		}
		all := make([]string, 0, len(names))
		for n := range names {
			all = append(all, n)
		}
		sort.Strings(all)
		for _, s := range sites {
			pass.Reportf(s.pos.Pos(),
				"atomic.Value %s stores inconsistent concrete types (%s); Store panics at runtime on the mismatch — store one concrete holder type instead",
				slot.Name(), joinTypes(all))
		}
	}
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func joinTypes(names []string) string {
	s := names[0]
	for _, n := range names[1:] {
		s += " vs " + n
	}
	return s
}

// checkMixedAccess flags vars whose address feeds sync/atomic functions
// while other sites access them directly.
func checkMixedAccess(pass *analysis.Pass) {
	// Pass 1: vars accessed atomically, and the idents already inside
	// sanctioned &x arguments.
	atomicVars := map[*types.Var]bool{}
	sanctioned := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				var id *ast.Ident
				switch x := ast.Unparen(un.X).(type) {
				case *ast.Ident:
					id = x
				case *ast.SelectorExpr:
					id = x.Sel
				default:
					continue
				}
				if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
					atomicVars[v] = true
					sanctioned[id] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return
	}
	// Pass 2: any other use of those vars is a plain access.
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] {
				return true
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || !atomicVars[v] {
				return true
			}
			pass.Reportf(id.Pos(),
				"%s is accessed atomically elsewhere (sync/atomic) but directly here; mixed access races — use the typed atomic wrappers or atomic ops everywhere",
				id.Name)
			return true
		})
	}
}
