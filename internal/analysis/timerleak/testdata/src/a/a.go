package a

import (
	"context"
	"time"
)

// One-shot time.After outside a loop is the documented convenient form.
func goodOneShot(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(time.Second):
		return true
	}
}

// The classic poll loop: one leaked timer per iteration.
func badAfterLoop(ctx context.Context, poll func() bool) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(50 * time.Millisecond): // want `time.After inside a loop`
			if poll() {
				return
			}
		}
	}
}

func badAfterRange(xs []int) {
	for range xs {
		<-time.After(time.Millisecond) // want `time.After inside a loop`
	}
}

// A literal defined inside the loop body runs per iteration.
func badAfterInLoopLiteral(n int) {
	for i := 0; i < n; i++ {
		f := func() <-chan time.Time {
			return time.After(time.Second) // want `time.After inside a loop`
		}
		<-f()
	}
}

// The hoisted-timer idiom the analyzer points at.
func goodHoistedTimer(ctx context.Context, poll func() bool) {
	t := time.NewTimer(50 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if poll() {
				return
			}
			t.Reset(50 * time.Millisecond)
		}
	}
}

// time.Tick can never be stopped: flagged everywhere.
func badTick() <-chan time.Time {
	return time.Tick(time.Second) // want `time.Tick leaks its ticker`
}

func goodTicker(ctx context.Context) {
	tk := time.NewTicker(time.Second)
	defer tk.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tk.C:
		}
	}
}

// Process-lifetime wiring documents itself.
func suppressedTick() <-chan time.Time {
	return time.Tick(time.Minute) //pitlint:ignore timerleak process-lifetime heartbeat wired once in main
}

// time.Time.After is the deadline comparison, not the timer allocator —
// a polling loop against a wall-clock deadline allocates nothing.
func goodDeadlinePoll(done func() bool) bool {
	deadline := time.Now().Add(time.Second)
	for !done() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}
