package timerleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/timerleak"
)

func TestTimerleak(t *testing.T) {
	analysistest.Run(t, "testdata", timerleak.Analyzer, "a")
}
