// Package timerleak flags the timer-allocation patterns that leak under
// sustained load. time.After allocates a timer that is not collected
// until it fires: inside a loop — the shape every retry/poll/heartbeat
// loop in a server converges on — each iteration leaks one timer for
// the full duration, and a tight loop with a long timeout holds
// thousands of live timers (before Go 1.23 this was unbounded heap
// growth; after, it is still per-iteration alloc and runtime timer
// churn on paths the serving stack runs millions of times). time.Tick
// is worse: the returned ticker can never be stopped, so each call
// commits a runtime timer for the rest of the process — acceptable only
// in main-adjacent wiring, which can say so with an ignore directive.
//
// The fix is mechanical and the analyzer names it: hoist a
// time.NewTimer before the loop and Stop/Reset it per iteration, or use
// time.NewTicker with defer Stop. Function literals inside a loop body
// count as inside the loop (they typically run per iteration); test
// files are exempt as everywhere in the suite.
package timerleak

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// scopeDirs: module-wide; the pattern is wrong on any production path.
var scopeDirs = []string{"internal", "cmd"}

var Analyzer = &analysis.Analyzer{
	Name: "timerleak",
	Doc: "timerleak: no time.After in loops, no time.Tick anywhere on production paths\n\n" +
		"Flags time.After inside for/range loops (one leaked timer per iteration until\n" +
		"it fires) and every time.Tick (the ticker can never be stopped); use\n" +
		"time.NewTimer/NewTicker with Stop.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), scopeDirs...) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		checkNode(pass, f, 0)
	}
	return nil
}

// checkNode walks n tracking loop depth. A nested function literal
// keeps the depth of its definition site: a literal inside a loop body
// generally executes per iteration, and a loop inside a literal is a
// loop regardless.
func checkNode(pass *analysis.Pass, n ast.Node, loopDepth int) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ForStmt:
			if m.Init != nil {
				checkNode(pass, m.Init, loopDepth)
			}
			if m.Cond != nil {
				checkNode(pass, m.Cond, loopDepth+1) // evaluated per iteration
			}
			if m.Post != nil {
				checkNode(pass, m.Post, loopDepth+1)
			}
			checkNode(pass, m.Body, loopDepth+1)
			return false
		case *ast.RangeStmt:
			checkNode(pass, m.X, loopDepth)
			checkNode(pass, m.Body, loopDepth+1)
			return false
		case *ast.CallExpr:
			fn := analysis.Callee(pass.TypesInfo, m)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			// Only the package-level functions allocate timers; methods
			// that share their names (time.Time.After, the deadline
			// comparison) are plain value operations.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch fn.Name() {
			case "Tick":
				pass.Reportf(m.Pos(),
					"time.Tick leaks its ticker — it can never be stopped; use time.NewTicker and defer t.Stop()")
			case "After":
				if loopDepth > 0 {
					pass.Reportf(m.Pos(),
						"time.After inside a loop allocates a timer per iteration that lives until it fires; hoist a time.NewTimer before the loop and Stop/Reset it")
				}
			}
		}
		return true
	})
}
