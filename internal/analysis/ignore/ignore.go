// Package ignore implements pitlint's suppression directive:
//
//	//pitlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive suppresses matching diagnostics reported on the same
// line (trailing comment) or on the line directly below (a directive on
// its own line). The analyzer list may be "all". The reason is
// mandatory: an intentional exception must say why it is intentional, so
// suppressions stay grep-able and reviewable. Malformed directives —
// missing analyzer list or missing reason — are themselves reported as
// findings by the driver, so a typo cannot silently disable a rule.
package ignore

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Prefix is the directive marker, without the comment slashes.
const Prefix = "pitlint:ignore"

// Directive is one parsed //pitlint:ignore comment.
type Directive struct {
	File      string
	Line      int      // line the directive appears on
	Analyzers []string // lower-case analyzer names, or ["all"]
	Reason    string
}

// Malformed is a syntactically invalid directive, reported as a finding.
type Malformed struct {
	Pos     token.Pos
	Message string
}

// Index answers "is this diagnostic suppressed" queries.
type Index struct {
	// byFileLine maps file → line → directives on that line.
	byFileLine map[string]map[int][]Directive
}

// Build scans the comments of files for directives. It returns the index
// and any malformed directives.
func Build(fset *token.FileSet, files []*ast.File) (*Index, []Malformed) {
	ix := &Index{byFileLine: map[string]map[int][]Directive{}}
	var bad []Malformed
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, Prefix) {
					continue
				}
				rest := strings.TrimPrefix(text, Prefix)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. "pitlint:ignoreXYZ" — not ours
				}
				d, msg := parse(rest)
				pos := fset.Position(c.Pos())
				if msg != "" {
					bad = append(bad, Malformed{Pos: c.Pos(), Message: msg})
					continue
				}
				d.File = pos.Filename
				d.Line = pos.Line
				lines := ix.byFileLine[d.File]
				if lines == nil {
					lines = map[int][]Directive{}
					ix.byFileLine[d.File] = lines
				}
				lines[d.Line] = append(lines[d.Line], d)
			}
		}
	}
	return ix, bad
}

// parse splits " analyzer[,analyzer] reason..." into a Directive, or
// returns a non-empty problem description.
func parse(rest string) (Directive, string) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Directive{}, "malformed //pitlint:ignore directive: missing analyzer list (want \"//pitlint:ignore <analyzer> <reason>\")"
	}
	if len(fields) < 2 {
		return Directive{}, "malformed //pitlint:ignore directive: missing reason (an intentional exception must say why)"
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		n = strings.ToLower(strings.TrimSpace(n))
		if n == "" {
			return Directive{}, "malformed //pitlint:ignore directive: empty analyzer name in list"
		}
		names = append(names, n)
	}
	return Directive{Analyzers: names, Reason: strings.Join(fields[1:], " ")}, ""
}

// Directives returns every well-formed directive in the index, sorted
// by file then line, for audit tooling (pitlint -why).
func (ix *Index) Directives() []Directive {
	var out []Directive
	for _, lines := range ix.byFileLine {
		for _, ds := range lines {
			out = append(out, ds...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// Suppressed reports whether a diagnostic from analyzer at posn is
// covered by a directive on the same line or the line directly above.
func (ix *Index) Suppressed(posn token.Position, analyzer string) bool {
	lines := ix.byFileLine[posn.Filename]
	if lines == nil {
		return false
	}
	analyzer = strings.ToLower(analyzer)
	for _, line := range []int{posn.Line, posn.Line - 1} {
		for _, d := range lines[line] {
			for _, n := range d.Analyzers {
				if n == "all" || n == analyzer {
					return true
				}
			}
		}
	}
	return false
}
