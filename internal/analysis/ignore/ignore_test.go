package ignore

import (
	goast "go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func buildFrom(t *testing.T, src string) (*Index, []Malformed, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ix, bad := Build(fset, []*goast.File{f})
	return ix, bad, fset
}

func TestSameLineAndLineAbove(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //pitlint:ignore probinvariant exact comparison is intentional here
	//pitlint:ignore ctxloop,locksafe bounded loop, measured
	_ = 2
	_ = 3
}
`
	ix, bad, _ := buildFrom(t, src)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %v", bad)
	}
	pos := func(line int) token.Position { return token.Position{Filename: "x.go", Line: line} }

	if !ix.Suppressed(pos(4), "probinvariant") {
		t.Error("trailing directive should suppress its own line")
	}
	if ix.Suppressed(pos(4), "ctxloop") {
		t.Error("directive must only suppress the listed analyzers")
	}
	if !ix.Suppressed(pos(6), "ctxloop") || !ix.Suppressed(pos(6), "locksafe") {
		t.Error("own-line directive should suppress the next line for every listed analyzer")
	}
	if ix.Suppressed(pos(7), "ctxloop") {
		t.Error("directive must not reach two lines down")
	}
	if ix.Suppressed(token.Position{Filename: "y.go", Line: 4}, "probinvariant") {
		t.Error("directive must not cross files")
	}
}

func TestAllKeywordAndCaseInsensitivity(t *testing.T) {
	src := `package p

//pitlint:ignore ALL generated code, reviewed upstream
var x = 1
`
	ix, bad, _ := buildFrom(t, src)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %v", bad)
	}
	if !ix.Suppressed(token.Position{Filename: "x.go", Line: 4}, "anything") {
		t.Error("\"all\" should suppress every analyzer, case-insensitively")
	}
}

// A single trailing directive naming several analyzers suppresses each
// of them on that line — and nothing else.
func TestMultiAnalyzerSameLine(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //pitlint:ignore poolsafe,timerleak pool entry holds a timer by design
}
`
	ix, bad, _ := buildFrom(t, src)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %v", bad)
	}
	pos := token.Position{Filename: "x.go", Line: 4}
	if !ix.Suppressed(pos, "poolsafe") || !ix.Suppressed(pos, "timerleak") {
		t.Error("multi-analyzer directive should suppress every listed analyzer on its line")
	}
	if ix.Suppressed(pos, "atomicstore") {
		t.Error("multi-analyzer directive must not suppress an unlisted analyzer")
	}
}

// Directives enumerates what -why audits: every well-formed directive,
// sorted by file then line; malformed ones never make the list.
func TestDirectivesEnumeration(t *testing.T) {
	fset := token.NewFileSet()
	var files []*goast.File
	for name, src := range map[string]string{
		"b.go": `package p

var y = 2 //pitlint:ignore locksafe second file
`,
		"a.go": `package p

var x = 1 //pitlint:ignore ctxloop first file

//pitlint:ignore probinvariant,norandglobal later line
var z = 3

//pitlint:ignore ctxloop
var w = 4
`,
	} {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	ix, bad := Build(fset, files)
	if len(bad) != 1 {
		t.Fatalf("want 1 malformed directive, got %d: %v", len(bad), bad)
	}
	ds := ix.Directives()
	if len(ds) != 3 {
		t.Fatalf("want 3 directives, got %d: %v", len(ds), ds)
	}
	wantOrder := []struct {
		file   string
		line   int
		reason string
	}{
		{"a.go", 3, "first file"},
		{"a.go", 5, "later line"},
		{"b.go", 3, "second file"},
	}
	for i, w := range wantOrder {
		d := ds[i]
		if d.File != w.file || d.Line != w.line || d.Reason != w.reason {
			t.Errorf("Directives()[%d] = %s:%d %q, want %s:%d %q",
				i, d.File, d.Line, d.Reason, w.file, w.line, w.reason)
		}
	}
	if len(ds[1].Analyzers) != 2 || ds[1].Analyzers[0] != "probinvariant" {
		t.Errorf("Directives()[1].Analyzers = %v, want both listed analyzers", ds[1].Analyzers)
	}
}

func TestMalformedDirectives(t *testing.T) {
	src := `package p

//pitlint:ignore
var a = 1

//pitlint:ignore ctxloop
var b = 2

//pitlint:ignorectxloop reasons
var c = 3
`
	ix, bad, _ := buildFrom(t, src)
	if len(bad) != 2 {
		t.Fatalf("want 2 malformed directives (missing list, missing reason), got %d: %v", len(bad), bad)
	}
	// The glued "pitlint:ignorectxloop" is not a directive at all.
	if ix.Suppressed(token.Position{Filename: "x.go", Line: 10}, "ctxloop") {
		t.Error("non-directive comment must not suppress anything")
	}
	// Malformed directives must not suppress.
	if ix.Suppressed(token.Position{Filename: "x.go", Line: 4}, "ctxloop") {
		t.Error("malformed directive must not suppress")
	}
}
