package ignore

import (
	goast "go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func buildFrom(t *testing.T, src string) (*Index, []Malformed, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ix, bad := Build(fset, []*goast.File{f})
	return ix, bad, fset
}

func TestSameLineAndLineAbove(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //pitlint:ignore probinvariant exact comparison is intentional here
	//pitlint:ignore ctxloop,locksafe bounded loop, measured
	_ = 2
	_ = 3
}
`
	ix, bad, _ := buildFrom(t, src)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %v", bad)
	}
	pos := func(line int) token.Position { return token.Position{Filename: "x.go", Line: line} }

	if !ix.Suppressed(pos(4), "probinvariant") {
		t.Error("trailing directive should suppress its own line")
	}
	if ix.Suppressed(pos(4), "ctxloop") {
		t.Error("directive must only suppress the listed analyzers")
	}
	if !ix.Suppressed(pos(6), "ctxloop") || !ix.Suppressed(pos(6), "locksafe") {
		t.Error("own-line directive should suppress the next line for every listed analyzer")
	}
	if ix.Suppressed(pos(7), "ctxloop") {
		t.Error("directive must not reach two lines down")
	}
	if ix.Suppressed(token.Position{Filename: "y.go", Line: 4}, "probinvariant") {
		t.Error("directive must not cross files")
	}
}

func TestAllKeywordAndCaseInsensitivity(t *testing.T) {
	src := `package p

//pitlint:ignore ALL generated code, reviewed upstream
var x = 1
`
	ix, bad, _ := buildFrom(t, src)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %v", bad)
	}
	if !ix.Suppressed(token.Position{Filename: "x.go", Line: 4}, "anything") {
		t.Error("\"all\" should suppress every analyzer, case-insensitively")
	}
}

func TestMalformedDirectives(t *testing.T) {
	src := `package p

//pitlint:ignore
var a = 1

//pitlint:ignore ctxloop
var b = 2

//pitlint:ignorectxloop reasons
var c = 3
`
	ix, bad, _ := buildFrom(t, src)
	if len(bad) != 2 {
		t.Fatalf("want 2 malformed directives (missing list, missing reason), got %d: %v", len(bad), bad)
	}
	// The glued "pitlint:ignorectxloop" is not a directive at all.
	if ix.Suppressed(token.Position{Filename: "x.go", Line: 10}, "ctxloop") {
		t.Error("non-directive comment must not suppress anything")
	}
	// Malformed directives must not suppress.
	if ix.Suppressed(token.Position{Filename: "x.go", Line: 4}, "ctxloop") {
		t.Error("malformed directive must not suppress")
	}
}
