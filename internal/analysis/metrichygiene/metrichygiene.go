// Package metrichygiene enforces the two rules that keep the
// dependency-free obs layer (internal/obs) safe at production traffic.
//
// Registration happens once, at wiring time: calls that create metric
// handles on an obs.Registry (Counter, Gauge, Histogram and their Vec
// variants) belong in a New*/new* constructor, init, or a package-level
// var — never on a request path. The registry is idempotent so a hot
// registration is not a correctness bug, but it is an RWMutex + map
// lookup + validation per request on paths engineered down to one
// atomic add, and it hides the handle-caching idiom the rest of the
// repo relies on.
//
// Label values come from bounded const sets: a label value that can
// carry a request-derived string (a query, a user ID, a raw URL path)
// makes metric cardinality grow with traffic until the scrape, and the
// process, fall over. A With(...) argument passes when it is provably
// bounded: a constant; a String() call on an integer-underlying named
// type (an enum stringer, e.g. plan.Tier.String); a call to a
// same-package function all of whose returns are constants (the
// metricLabel idiom); or a local variable assigned only from such
// expressions. Everything else — parameters, struct fields, sprintf of
// user input — is flagged, and genuinely-bounded-but-unprovable sites
// (routeLabel-prefiltered paths, status codes) document themselves with
// a //pitlint:ignore justification.
package metrichygiene

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// scopeDirs: the packages that consume internal/obs. The obs package
// itself (which implements the registry) is deliberately out of scope.
var scopeDirs = []string{
	"internal/core",
	"internal/plan",
	"internal/search",
	"internal/server",
	"internal/chaos",
	"internal/shard",
	"cmd",
}

var registrationMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

var vecTypes = map[string]bool{
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "metrichygiene",
	Doc: "metrichygiene: metrics register once at wiring time; label values come from bounded const sets\n\n" +
		"Flags obs.Registry registration calls outside New*/new*/init wiring functions and\n" +
		"Vec.With label values that are not provably bounded (request-derived labels grow\n" +
		"cardinality without bound).",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), scopeDirs...) {
		return nil
	}
	c := &checker{
		pass:  pass,
		decls: map[*types.Func]*ast.FuncDecl{},
		memo:  map[*types.Func]int{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				c.checkFunc(d)
			case *ast.GenDecl:
				// Package-level var initializers are wiring by
				// definition; only their With args need bounding.
				ast.Inspect(d, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						c.checkWith(nil, call)
					}
					return true
				})
			}
		}
	}
	return nil
}

const (
	stateChecking = iota + 1
	stateBounded
	stateUnbounded
)

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func]int // const-returning function memo
}

// isObsRegistry reports whether t is the obs package's Registry.
func isObsRegistry(t types.Type) bool {
	return isObsNamed(t, "Registry")
}

// isObsNamed reports whether t (unwrapping one pointer) is the named
// type obs.<name> — matched by package base name so the analyzer works
// on both the real internal/obs and fixture stubs.
func isObsNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	path := obj.Pkg().Path()
	return path == "obs" || strings.HasSuffix(path, "/obs")
}

// isWiringFunc reports whether fd is a sanctioned registration site: a
// New*/new* constructor or init.
func isWiringFunc(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || name == "init"
}

// checkFunc validates registrations and With calls inside fd.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	wiring := isWiringFunc(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if registrationMethods[sel.Sel.Name] && isObsRegistry(c.pass.TypesInfo.TypeOf(sel.X)) && !wiring {
				c.pass.Reportf(call.Pos(),
					"metric %s registered inside %s; register once in a New*/new* constructor (or package-level var) and cache the handle — per-request registration is a lock and map lookup on a hot path",
					sel.Sel.Name, fd.Name.Name)
			}
		}
		c.checkWith(fd, call)
		return true
	})
}

// checkWith validates the label-value arguments of a Vec.With call.
func (c *checker) checkWith(fd *ast.FuncDecl, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "With" {
		return
	}
	recvType := c.pass.TypesInfo.TypeOf(sel.X)
	isVec := false
	for name := range vecTypes {
		if isObsNamed(recvType, name) {
			isVec = true
			break
		}
	}
	if !isVec {
		return
	}
	for _, arg := range call.Args {
		if !c.bounded(fd, arg, map[types.Object]bool{}) {
			c.pass.Reportf(arg.Pos(),
				"metric label value is not provably bounded; label values must come from a const set (constant, enum String(), or a const-returning helper) or cardinality grows with traffic")
		}
	}
}

// bounded reports whether expr provably evaluates to a member of a
// bounded set. visiting breaks assignment cycles.
func (c *checker) bounded(fd *ast.FuncDecl, expr ast.Expr, visiting map[types.Object]bool) bool {
	expr = ast.Unparen(expr)
	if tv, ok := c.pass.TypesInfo.Types[expr]; ok && tv.Value != nil {
		return true // constant
	}
	switch e := expr.(type) {
	case *ast.CallExpr:
		// Enum stringer: String() on a named type with integer/bool
		// underlying — the method can only produce as many values as
		// the enum has.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "String" && len(e.Args) == 0 {
			if isEnumLike(c.pass.TypesInfo.TypeOf(sel.X)) {
				return true
			}
		}
		// Same-package helper returning only constants (metricLabel).
		if fn := analysis.Callee(c.pass.TypesInfo, e); fn != nil && fn.Pkg() == c.pass.Pkg {
			return c.constReturning(fn)
		}
	case *ast.Ident:
		obj, ok := c.pass.TypesInfo.Uses[e].(*types.Var)
		if !ok || fd == nil || visiting[obj] {
			return false
		}
		visiting[obj] = true
		defer delete(visiting, obj)
		return c.localBounded(fd, obj, visiting)
	}
	return false
}

// isEnumLike reports whether t is a named type whose underlying is an
// integer or boolean — the shape of a stringered enum.
func isEnumLike(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	b, ok := named.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// localBounded reports whether local variable obj is assigned only
// bounded expressions within fd (parameters and fields are never
// bounded — their values arrive from outside the function).
func (c *checker) localBounded(fd *ast.FuncDecl, obj *types.Var, visiting map[types.Object]bool) bool {
	assigned := false
	ok := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				// Multi-value assignment (x, y := f()): can't attribute.
				for _, lhs := range n.Lhs {
					if c.lhsIs(lhs, obj) {
						ok = false
					}
				}
				return true
			}
			for i, lhs := range n.Lhs {
				if !c.lhsIs(lhs, obj) {
					continue
				}
				assigned = true
				if !c.bounded(fd, n.Rhs[i], visiting) {
					ok = false
				}
			}
		case *ast.RangeStmt:
			// Range variables take values from the ranged collection;
			// a range over anything leaves them unproven here. (Ranging
			// a const array could be admitted later if needed.)
			if n.Value != nil && c.lhsIs(n.Value, obj) {
				ok = false
			}
			if n.Key != nil && c.lhsIs(n.Key, obj) {
				ok = false
			}
		}
		return true
	})
	return assigned && ok
}

// lhsIs reports whether lhs is exactly the identifier for obj.
func (c *checker) lhsIs(lhs ast.Expr, obj *types.Var) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	if got, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok && got == obj {
		return true
	}
	if got, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok && got == obj {
		return true
	}
	return false
}

// constReturning reports whether every return in fn's body yields only
// constant expressions — the metricLabel idiom. Memoized,
// cycle-tolerant (a cycle resolves to unbounded).
func (c *checker) constReturning(fn *types.Func) bool {
	switch c.memo[fn] {
	case stateBounded:
		return true
	case stateUnbounded, stateChecking:
		return false
	}
	fd, ok := c.decls[fn]
	if !ok || fd.Body == nil {
		c.memo[fn] = stateUnbounded
		return false
	}
	c.memo[fn] = stateChecking
	ok = true
	returns := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // different function's returns
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		returns++
		if len(ret.Results) == 0 {
			ok = false // naked return: can't see the value
			return true
		}
		for _, res := range ret.Results {
			tv, has := c.pass.TypesInfo.Types[res]
			if !has || tv.Value == nil {
				ok = false
			}
		}
		return true
	})
	if ok && returns > 0 {
		c.memo[fn] = stateBounded
		return true
	}
	c.memo[fn] = stateUnbounded
	return false
}
