package a

import (
	"strconv"

	"obs"
)

type Method int

const (
	MLRW Method = iota
	MRCL
)

// String is an enum stringer: bounded by the type's value set.
func (m Method) String() string {
	if m == MRCL {
		return "rcl"
	}
	return "lrw"
}

// metricLabel returns only constants: the sanctioned label helper.
func metricLabel(m Method) string {
	if m == MRCL {
		return "rcl"
	}
	return "lrw"
}

// unboundedLabel forwards its argument: not a const set.
func unboundedLabel(s string) string {
	return s
}

type metrics struct {
	hits *obs.CounterVec
	reqs *obs.CounterVec
}

// Registration in a new* constructor is the wiring idiom.
func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		hits: reg.CounterVec("hits_total", "h", "method"),
		reqs: reg.CounterVec("reqs_total", "r", "route"),
	}
}

// Package-level var initializers are wiring by definition.
var defaultReg = &obs.Registry{}
var bootCounter = defaultReg.Counter("boot_total", "b")

// Registration on a non-wiring path re-locks the registry per call.
func (m *metrics) observe(reg *obs.Registry) {
	c := reg.Counter("lazy_total", "l") // want `metric Counter registered inside observe`
	c.Inc()
}

func goodLabels(m *metrics, method Method) {
	m.hits.With("lrw").Inc()               // constant
	m.hits.With(metricLabel(method)).Inc() // const-returning helper
	m.hits.With(method.String()).Inc()     // enum stringer
	l := metricLabel(method)
	m.hits.With(l).Inc() // local assigned only bounded values
}

func badLabels(m *metrics, route string, status int) {
	m.reqs.With(route).Inc()                // want `label value is not provably bounded`
	m.reqs.With(strconv.Itoa(status)).Inc() // want `label value is not provably bounded`
	m.reqs.With(unboundedLabel("x")).Inc()  // want `label value is not provably bounded`
}

// A rebind to request data poisons the local.
func badReassigned(m *metrics, q string) {
	l := "const"
	l = q
	m.hits.With(l).Inc() // want `label value is not provably bounded`
}

// Bounded in fact but not provably — the documented escape hatch.
func suppressedRoute(m *metrics, route string) {
	m.reqs.With(route).Inc() //pitlint:ignore metrichygiene route prefiltered by routeLabel to a closed set
}
