// Module-path fixture for the scatter-gather router package, in scope
// since the PR-10 extension: the router's per-shard metrics label by
// shard index, which is config-driven and therefore only safe through
// the const-returning shardLabel idiom.
package shard

import (
	"strconv"

	"obs"
)

// shardLabel caps the shard-index label at a closed const set: the
// sanctioned idiom (every return is a constant).
func shardLabel(i int) string {
	switch i {
	case 0:
		return "0"
	case 1:
		return "1"
	case 2:
		return "2"
	case 3:
		return "3"
	}
	return "overflow"
}

type routerMetrics struct {
	fanout *obs.CounterVec
}

// Registration stays in the constructor: one RWMutex hit at wiring
// time, pre-resolved handles on the scatter path.
func newRouterMetrics(reg *obs.Registry) *routerMetrics {
	return &routerMetrics{
		fanout: reg.CounterVec("pit_shard_scatter_fanout", "per-shard scatter count", "shard"),
	}
}

func goodShardLabel(m *routerMetrics, i int) {
	m.fanout.With(shardLabel(i)).Inc()
}

// Raw strconv of the shard index is unbounded as far as the analyzer
// can prove — and genuinely unbounded when the shard count comes from
// a flag.
func badShardLabel(m *routerMetrics, i int) {
	m.fanout.With(strconv.Itoa(i)).Inc() // want `label value is not provably bounded`
}

// Registering per scatter re-locks the registry on the hot path.
func badHotRegister(reg *obs.Registry) {
	c := reg.Counter("lazy_shard_total", "l") // want `metric Counter registered inside badHotRegister`
	c.Inc()
}
