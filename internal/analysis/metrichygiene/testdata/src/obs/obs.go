// Stub of the repo's internal/obs registry: just the shapes
// metrichygiene resolves (named types in a package called "obs").
package obs

type Registry struct{}

type Counter struct{}

func (*Counter) Inc() {}

type Gauge struct{}

type Histogram struct{}

func (*Histogram) Observe(v float64) {}

type CounterVec struct{}

func (*CounterVec) With(values ...string) *Counter { return nil }

type GaugeVec struct{}

func (*GaugeVec) With(values ...string) *Gauge { return nil }

type HistogramVec struct{}

func (*HistogramVec) With(values ...string) *Histogram { return nil }

func (*Registry) Counter(name, help string) *Counter { return nil }
func (*Registry) Gauge(name, help string) *Gauge     { return nil }
func (*Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return nil
}
func (*Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return nil
}
func (*Registry) GaugeVec(name, help string, labels ...string) *GaugeVec { return nil }
func (*Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return nil
}
