package metrichygiene_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/metrichygiene"
)

func TestMetrichygiene(t *testing.T) {
	analysistest.Run(t, "testdata", metrichygiene.Analyzer, "a", "repro/internal/shard")
}
