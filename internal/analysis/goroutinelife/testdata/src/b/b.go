// Dependency fixture: a worker package analyzed before "a" so its
// Bounded fact is available at a's spawn sites.
package b

import (
	"context"
	"sync"
)

// Worker completes the caller's WaitGroup: exported as bounded.
func Worker(wg *sync.WaitGroup) {
	defer wg.Done()
}

// Watcher observes its context: exported as bounded.
func Watcher(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
	}
}

// Leak neither completes a group nor observes a context; spawning it is
// a finding at the spawn site (not here — defining a function is fine,
// detaching it is not).
func Leak() {
	for {
		println("busy")
	}
}
