// Module-path fixture for the scatter-gather router package, in scope
// since the PR-10 extension: the router's per-shard scatter goroutines
// and parallel hydration loaders must be gatherable (WaitGroup) or
// lifecycle-cancelable, exactly like the rest of the serving stack.
package shard

import (
	"context"
	"sync"
)

type router struct {
	wg sync.WaitGroup
}

// Scatter fan-out: every per-shard goroutine completes the gather
// WaitGroup the loop Adds, so the gather barrier accounts for all of
// them.
func (r *router) goodScatter(shards int) {
	for i := 0; i < shards; i++ {
		r.wg.Add(1)
		go func(i int) {
			defer r.wg.Done()
			_ = i
		}(i)
	}
	r.wg.Wait()
}

// Parallel hydration: loaders complete a local group and observe the
// hydration context, so cancellation stops the cold start.
func goodHydrate(ctx context.Context, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
		}(i)
	}
	wg.Wait()
}

// A shard probe spawned with neither is the leak the scope extension
// exists to catch: the gather returns while the probe still runs.
func badProbe(ch chan int) {
	go func() { // want `detached from the engine lifecycle`
		ch <- 1
	}()
}

// A scatter loop whose goroutines never complete the group the caller
// waits on: Done without Add in the spawner.
func badScatterNoAdd(wg *sync.WaitGroup, shards int) {
	for i := 0; i < shards; i++ {
		go func() { // want `never calls Add`
			defer wg.Done()
		}()
	}
}
