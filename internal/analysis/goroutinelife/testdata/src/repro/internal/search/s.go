// Module-path fixture outside goroutinelife's scope: the compute
// kernels manage their own worker pools, so nothing here is reported
// even though the goroutine is detached.
package search

func Detached() {
	go func() { println("kernel-local") }()
}
