package a

import (
	"context"
	"sync"

	"b"
)

type Engine struct {
	wg   sync.WaitGroup
	life context.Context
}

// Literal goroutine completing a receiver WaitGroup the method Adds.
func (e *Engine) goodLiteral() {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
	}()
}

// Done inside a nested (deferred) literal still completes the group.
func goodDeferredDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer func() { wg.Done() }()
	}()
}

// Observing the context bounds the goroutine to the lifecycle.
func goodCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Cross-package spawn resolved through b's Bounded fact.
func goodCrossPackage(wg *sync.WaitGroup) {
	wg.Add(1)
	go b.Worker(wg)
}

func goodCrossPackageCtx(ctx context.Context) {
	go b.Watcher(ctx)
}

// Same-package named callee resolved from its body.
func localWorker(wg *sync.WaitGroup) { defer wg.Done() }

func goodSamePackage(wg *sync.WaitGroup) {
	wg.Add(1)
	go localWorker(wg)
}

// Delegating to a same-package context-observing helper counts.
func goodDelegates(ctx context.Context) {
	go func() {
		helper(ctx)
	}()
}

func helper(ctx context.Context) {
	if ctx.Err() != nil {
		return
	}
}

func badDetached() {
	go func() { // want `detached from the engine lifecycle`
		println("fire and forget")
	}()
}

// Done without a matching Add in the spawner is its own finding: the
// group underflows or, worse, was never something Close waits on.
func badNoAdd(wg *sync.WaitGroup) {
	go func() { // want `never calls Add`
		defer wg.Done()
	}()
}

func badCrossPackage() {
	go b.Leak() // want `detached from the engine lifecycle`
}

func fireAndForget() { println("x") }

func badSamePackageNamed() {
	go fireAndForget() // want `detached from the engine lifecycle`
}

// An explicit, justified suppression keeps a deliberate daemon.
func suppressedDaemon() {
	//pitlint:ignore goroutinelife process-lifetime daemon by design, reaped at exit
	go func() { println("daemon") }()
}

// Streaming-dispatcher shape (stream.Pipeline.Start, the subscription
// dispatch loop): the spawn completes the receiver's WaitGroup and
// delegates to a loop that selects on the lifecycle context, so Stop
// (cancel + Wait) reaps it deterministically.
type dispatcher struct {
	wg   sync.WaitGroup
	life context.Context
	kick chan struct{}
}

func (d *dispatcher) loop() {
	for {
		select {
		case <-d.life.Done():
			return
		case <-d.kick:
		}
	}
}

func (d *dispatcher) goodStart() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		d.loop()
	}()
}

// The same loop spawned bare is a leak: nothing Adds, nothing observes
// the lifecycle, Stop has nothing to wait on.
func (d *dispatcher) badStart() {
	go func() { // want `detached from the engine lifecycle`
		for range d.kick {
		}
	}()
}
