// Package goroutinelife enforces the lifecycle contract the serving
// stack converged on across PRs 3–6: every goroutine the engine, the
// planner, the server or the chaos harness spawns must be something
// Close/drain can account for. Concretely, the goroutine must either
// complete a sync.WaitGroup (the Add/Done pattern Close waits on) or
// observe a context (ctx.Err()/ctx.Done()) so cancelling the engine
// lifecycle stops it. A goroutine with neither is detached: it can
// outlive Close, touch freed state, fail the chaos suite's
// goroutine-hygiene checks, and leak under load — the exact class of
// the PR-3 detached-build bug that had to be re-bounded onto the
// lifecycle context.
//
// The check is lexical per spawn site. A `go func(){...}()` literal is
// bounded when its body (including nested literals, e.g. a deferred
// Done) calls Done on a WaitGroup that the spawning function also
// Add()s, or observes a context. A `go f(...)` named call is bounded
// when f's body is — resolved directly for same-package functions and
// through the Bounded package fact for imported ones, so a worker
// helper in another package keeps its callers honest without being
// re-analyzed.
package goroutinelife

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// scopeDirs are the concurrent serving-stack packages whose goroutines
// Close must be able to wait on. Leaf compute packages manage their own
// worker pools with local WaitGroups and are covered transitively when
// these packages call them.
var scopeDirs = []string{
	"internal/core",
	"internal/plan",
	"internal/server",
	"internal/chaos",
	"internal/stream",
	"internal/subscribe",
	"internal/shard",
}

// Bounded is the package fact goroutinelife exports: the declared
// functions and methods (by types.Func full name, sorted) whose bodies
// satisfy the boundedness contract, so spawn sites in importing
// packages can resolve `go pkg.Worker(...)` without seeing its body.
type Bounded struct{ Funcs []string }

// AFact marks Bounded as a pitlint fact.
func (*Bounded) AFact() {}

func (b *Bounded) has(name string) bool {
	i := sort.SearchStrings(b.Funcs, name)
	return i < len(b.Funcs) && b.Funcs[i] == name
}

var Analyzer = &analysis.Analyzer{
	Name: "goroutinelife",
	Doc: "goroutinelife: every goroutine must be waitable (WaitGroup) or lifecycle-cancelable (context)\n\n" +
		"Flags go statements in internal/{core,plan,server,chaos} whose goroutine neither\n" +
		"completes a sync.WaitGroup Add/Done pair nor observes a context, so Engine.Close\n" +
		"and server drain cannot wait for or stop it.",
	FactTypes: []analysis.Fact{(*Bounded)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:  pass,
		decls: map[*types.Func]*ast.FuncDecl{},
		memo:  map[*types.Func]int{},
		facts: map[string]*Bounded{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[obj] = fd
			}
		}
	}

	// Export the Bounded fact for every package analyzed, in or out of
	// reporting scope: an out-of-scope worker package must still
	// publish which of its functions are safe to spawn.
	var bounded []string
	for fn, fd := range c.decls {
		if c.boundedBody(fd.Body) {
			bounded = append(bounded, fn.FullName())
		}
	}
	if len(bounded) > 0 {
		sort.Strings(bounded)
		pass.ExportPackageFact(&Bounded{Funcs: bounded})
	}

	if !analysis.InScope(pass.Pkg.Path(), scopeDirs...) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			c.checkSpawn(f, g)
			return true
		})
	}
	return nil
}

const (
	stateChecking = iota + 1
	stateBounded
	stateDetached
)

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func]int
	facts map[string]*Bounded // imported Bounded facts by package path
}

// checkSpawn validates one go statement inside file f.
func (c *checker) checkSpawn(f *ast.File, g *ast.GoStmt) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		wgs := c.doneTargets(fun.Body)
		if len(wgs) > 0 {
			if c.hasAddOn(c.enclosingFunc(f, g), wgs) {
				return
			}
			c.pass.Reportf(g.Pos(),
				"goroutine calls Done on %s but the spawning function never calls Add on it; pair them in the spawner so Close can wait on the group", wgs[0])
			return
		}
		if c.observesContext(fun.Body) {
			return
		}
	default:
		if fn := analysis.Callee(c.pass.TypesInfo, g.Call); fn != nil && c.funcBounded(fn) {
			return
		}
	}
	c.pass.Reportf(g.Pos(),
		"goroutine is detached from the engine lifecycle: it neither completes a sync.WaitGroup (Add/Done) nor observes a context, so Close cannot wait for it or stop it; bound it with a WaitGroup the closer waits on or derive its work from the lifecycle ctx")
}

// enclosingFunc returns the innermost FuncDecl or FuncLit in f that
// contains g — the scope where the matching wg.Add must appear. The
// innermost wins because a deeper containing function node always
// starts later in the traversal.
func (c *checker) enclosingFunc(f *ast.File, g *ast.GoStmt) ast.Node {
	var best ast.Node = f
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > g.Pos() || n.End() < g.End() {
			return false // cannot contain g; prune
		}
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			best = n
		}
		return true
	})
	return best
}

// isWaitGroup reports whether t is sync.WaitGroup, unwrapping one
// pointer.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// renderPath renders a selector/ident chain ("e.revalWG", "wg") for
// lexically matching a Done against its Add; non-chain expressions
// render empty and never match.
func renderPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := renderPath(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	}
	return ""
}

// doneTargets returns the rendered paths of WaitGroups body calls
// Done() on, nested function literals included (a deferred
// func(){ wg.Done() } still completes the group).
func (c *checker) doneTargets(body ast.Node) []string {
	var out []string
	seen := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" || !isWaitGroup(c.pass.TypesInfo.TypeOf(sel.X)) {
			return true
		}
		if p := renderPath(sel.X); p != "" && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
		return true
	})
	return out
}

// hasAddOn reports whether scope contains an Add call on any of the
// rendered WaitGroup paths.
func (c *checker) hasAddOn(scope ast.Node, paths []string) bool {
	want := map[string]bool{}
	for _, p := range paths {
		want[p] = true
	}
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" || !isWaitGroup(c.pass.TypesInfo.TypeOf(sel.X)) {
			return true
		}
		if want[renderPath(sel.X)] {
			found = true
			return false
		}
		return true
	})
	return found
}

// observesContext reports whether body consults a context.Context:
// ctx.Err(), ctx.Done(), or delegation to a bounded same/cross-package
// function.
func (c *checker) observesContext(body ast.Node) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") &&
				analysis.IsContextType(c.pass.TypesInfo.TypeOf(sel.X)) {
				ok = true
				return false
			}
		}
		if fn := analysis.Callee(c.pass.TypesInfo, call); fn != nil && c.funcBounded(fn) {
			ok = true
			return false
		}
		return true
	})
	return ok
}

// boundedBody reports whether a function body satisfies the spawn
// contract on its own: it completes some WaitGroup or observes a
// context.
func (c *checker) boundedBody(body ast.Node) bool {
	return len(c.doneTargets(body)) > 0 || c.observesContext(body)
}

// funcBounded resolves boundedness for a named function: same-package
// declarations by body (memoized, cycle-tolerant — a cycle resolves to
// detached), imported ones through their package's Bounded fact.
func (c *checker) funcBounded(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if pkg.Path() != c.pass.Pkg.Path() {
		fact, loaded := c.facts[pkg.Path()]
		if !loaded {
			fact = new(Bounded)
			if !c.pass.ImportPackageFact(pkg.Path(), fact) {
				fact = nil
			}
			c.facts[pkg.Path()] = fact
		}
		return fact != nil && fact.has(fn.FullName())
	}
	switch c.memo[fn] {
	case stateBounded:
		return true
	case stateDetached, stateChecking:
		return false
	}
	fd, ok := c.decls[fn]
	if !ok || fd.Body == nil {
		c.memo[fn] = stateDetached
		return false
	}
	c.memo[fn] = stateChecking
	if c.boundedBody(fd.Body) {
		c.memo[fn] = stateBounded
		return true
	}
	c.memo[fn] = stateDetached
	return false
}
