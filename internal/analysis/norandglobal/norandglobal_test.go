package norandglobal_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/norandglobal"
)

func TestNorandglobal(t *testing.T) {
	analysistest.Run(t, "testdata", norandglobal.Analyzer, "a")
}
