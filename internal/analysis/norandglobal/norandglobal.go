// Package norandglobal enforces the repo's determinism contract:
// every random draw flows from a configured seed (Options.Seed plus
// splitmix64 per-worker derivation), so a search result is exactly
// reproducible from its config. Two things break that:
//
//  1. the global functions of math/rand or math/rand/v2
//     (rand.Intn, rand.Float64, rand.Shuffle, rand.Seed, ...), which
//     draw from process-global state shared across goroutines, and
//  2. seeding any RNG from the wall clock (time.Now()), which makes
//     the seed unrecoverable.
//
// Constructing explicit generators — rand.New, rand.NewSource,
// rand.NewZipf, and the v2 source constructors — is allowed; that is
// precisely the injected-RNG idiom the rule pushes toward.
//
// The rule applies module-wide outside _test.go files.
package norandglobal

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "norandglobal",
	Doc: "norandglobal: forbid global math/rand state and wall-clock RNG seeding\n\n" +
		"Flags calls to math/rand top-level functions (process-global, irreproducible\n" +
		"state) and RNGs seeded from time.Now(); randomness must come from a *rand.Rand\n" +
		"constructed from the configured seed.",
	Run: run,
}

// allowedCtors are the explicit-generator constructors; everything else
// at package level in math/rand{,/v2} manipulates global state.
var allowedCtors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes its *rand.Rand explicitly
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	// Nested constructors (rand.New(rand.NewSource(...))) would each
	// re-discover the same time.Now call; report each position once.
	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			pkgPath := fn.Pkg().Path()
			if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand etc. have a receiver; only
			// package-level functions are the global state.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if !allowedCtors[fn.Name()] {
				pass.Reportf(call.Pos(),
					"call to global %s.%s uses process-global random state and breaks run-to-run reproducibility; draw from a *rand.Rand seeded from the configured seed",
					pkgPath, fn.Name())
				return true
			}
			// Allowed constructor — but not seeded from the clock.
			for _, arg := range call.Args {
				if now := findTimeNow(pass.TypesInfo, arg); now != nil && !reported[now.Pos()] {
					reported[now.Pos()] = true
					pass.Reportf(now.Pos(),
						"RNG seeded from time.Now() makes the seed unrecoverable; derive it from the configured seed (see splitmix64 in internal/randwalk)")
				}
			}
			return true
		})
	}
	return nil
}

// findTimeNow returns the first call to time.Now in e's subtree, if any.
func findTimeNow(info *types.Info, e ast.Expr) (found *ast.CallExpr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.Callee(info, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "time" && fn.Name() == "Now" {
			found = call
			return false
		}
		return true
	})
	return found
}
