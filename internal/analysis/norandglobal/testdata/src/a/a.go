package a

import (
	"math/rand"
	"time"
)

// Global top-level draws share mutable process state.
func bad() int {
	return rand.Intn(10) // want `global math/rand\.Intn`
}

func badFloat() float64 {
	return rand.Float64() // want `global math/rand\.Float64`
}

func badSeed() {
	rand.Seed(42) // want `global math/rand\.Seed`
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle`
}

// Wall-clock seeding makes the seed unrecoverable even through an
// allowed constructor.
func badClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from time\.Now`
}

// Probabilistic metrics sampling is the tempting new offender since the
// observability layer landed: a coin flip per observation makes scrape
// values irreproducible across runs. The sanctioned idiom is a
// deterministic atomic tick (observe every Nth event), as in
// internal/search's depth sampling.
func badSampledObserve(observe func(float64), v float64) {
	if rand.Intn(16) == 0 { // want `global math/rand\.Intn`
		observe(v)
	}
}

// Jittering a scrape/flush interval off the wall clock smuggles
// time.Now seeding in through a metrics-sounding name.
func badScrapeJitter() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from time\.Now`
}

// Explicit generators built from a configured seed are the sanctioned
// idiom.
func good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10) // method on an injected *rand.Rand: fine
}

func goodZipf(r *rand.Rand) *rand.Zipf {
	return rand.NewZipf(r, 1.1, 1, 100)
}
