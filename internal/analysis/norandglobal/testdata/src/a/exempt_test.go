package a

import "math/rand"

// _test.go files are exempt: tests may use ad-hoc randomness.
func fuzzInput() int {
	return rand.Intn(100) // no finding: test file
}
