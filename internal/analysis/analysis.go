// Package analysis is a minimal, dependency-free core compatible in
// spirit with golang.org/x/tools/go/analysis: an Analyzer inspects one
// type-checked package at a time through a Pass and reports Diagnostics.
//
// The x/tools module is deliberately not imported — the repo builds
// offline from the standard library alone — so this package re-implements
// the small subset the pitlint suite needs: the Analyzer/Pass/Diagnostic
// trio, deterministic diagnostic ordering, and the //pitlint:ignore
// suppression directive (see the ignore sub-package). Drivers are
// cmd/pitlint (the `go vet -vettool` unit checker) and
// internal/analysis/analysistest (the fixture-based test harness).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/ignore"
)

// Analyzer describes one static-analysis rule. Unlike x/tools analyzers
// it returns no result value; most pitlint rules are single-package
// syntax+types checks. Rules that need cross-package knowledge declare
// package-level fact types (see facts.go) which the drivers thread
// between packages — in memory for analysistest, through the vet .vetx
// files for cmd/pitlint.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pitlint:ignore directives. By convention a single lowercase word.
	Name string
	// Doc is a short one-paragraph description; the first line is the
	// summary shown by `pitlint -list`.
	Doc string
	// FactTypes lists prototypes of the package facts this analyzer
	// exports or imports: pointers to gob-encodable structs. Analyzers
	// with fact types run on dependency packages too (facts only,
	// diagnostics discarded) so their exports exist before importers
	// need them.
	FactTypes []Fact
	// Run applies the rule to one package via pass.Report/Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts  *FactSet
	report func(Diagnostic)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string // name of the reporting analyzer
	Message  string
}

// Report emits a diagnostic, stamping the analyzer name.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportPackageFact publishes fact for the package under analysis,
// replacing any earlier fact of the same concrete type. fact's type
// must appear in the analyzer's FactTypes, or drivers will not be able
// to serialize it.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts != nil {
		p.facts.export(p.Pkg.Path(), fact)
	}
}

// ImportPackageFact copies the fact of fact's concrete type exported by
// the package at path into fact, reporting whether one exists. It
// returns false when the driver wired no fact set.
func (p *Pass) ImportPackageFact(path string, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.get(path, fact)
}

// Package bundles the inputs shared by every analyzer run over the same
// type-checked package.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts carries package facts into and out of Run: the driver
	// pre-populates it with dependency facts and reads back whatever the
	// analyzers export. nil is valid and disables the fact machinery.
	Facts *FactSet
}

// Run applies each analyzer to pkg, filters the findings through the
// //pitlint:ignore directives found in pkg's files, and returns the
// surviving diagnostics sorted by position then analyzer name. Malformed
// directives surface as diagnostics themselves (analyzer "pitlint"), so a
// suppression that silently matches nothing cannot hide a finding.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	index, bad := ignore.Build(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, d := range bad {
		out = append(out, Diagnostic{Pos: d.Pos, Analyzer: "pitlint", Message: d.Message})
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			facts:     pkg.Facts,
		}
		var diags []Diagnostic
		pass.report = func(d Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		for _, d := range diags {
			if index.Suppressed(pkg.Fset.Position(d.Pos), a.Name) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ModulePath is the import-path prefix of this repository. Analyzer
// scoping treats packages under it specially: a scoped analyzer runs
// only on its listed directories, while packages outside the module
// (analysistest fixtures, third-party code run through pitlint) are
// always eligible.
const ModulePath = "repro"

// InScope reports whether a scoped analyzer should run on pkgPath.
// dirs are module-relative directories such as "internal/lrw"; a package
// inside the module matches if it equals or sits below one of them.
// Packages outside the module are always in scope (fixtures rely on
// this; negative scope fixtures use module-prefixed fixture paths).
func InScope(pkgPath string, dirs ...string) bool {
	if pkgPath != ModulePath && !strings.HasPrefix(pkgPath, ModulePath+"/") {
		return true
	}
	for _, d := range dirs {
		p := ModulePath + "/" + d
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// IsTestFile reports whether f was parsed from a _test.go file. The
// pitlint analyzers enforce production invariants only: tests may use
// exact float comparisons, ad-hoc randomness and uncancelled loops.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// Callee resolves the called function or method of call, or nil for
// indirect calls, builtins and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// NewInfo returns a types.Info with every map analyzers rely on
// allocated. Both drivers use it so the analyzers see a uniform view.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
