package analysis

import (
	"bytes"
	"encoding/gob"
	"testing"
)

type testFact struct{ Names []string }

func (*testFact) AFact() {}

type otherFact struct{ N int }

func (*otherFact) AFact() {}

func init() {
	gob.Register(&testFact{})
	gob.Register(&otherFact{})
}

func TestFactSetExportGet(t *testing.T) {
	s := NewFactSet()
	if got := new(testFact); s.get("p", got) {
		t.Fatal("get on empty set reported a fact")
	}
	s.export("p", &testFact{Names: []string{"a", "b"}})
	s.export("p", &otherFact{N: 7}) // different type, same path: distinct slot
	s.export("q", &testFact{Names: []string{"c"}})

	var got testFact
	if !s.get("p", &got) || len(got.Names) != 2 || got.Names[0] != "a" {
		t.Fatalf("get(p, testFact) = %v, %+v", true, got)
	}
	var oth otherFact
	if !s.get("p", &oth) || oth.N != 7 {
		t.Fatalf("get(p, otherFact) = %+v", oth)
	}
	if !s.get("q", &got) || len(got.Names) != 1 {
		t.Fatalf("get(q, testFact) = %+v", got)
	}
	if s.get("r", &got) {
		t.Fatal("get for unknown path reported a fact")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}

	// Re-export of the same (path, type) replaces.
	s.export("p", &testFact{Names: []string{"z"}})
	if s.Len() != 3 {
		t.Fatalf("Len after replace = %d, want 3", s.Len())
	}
	s.get("p", &got)
	if len(got.Names) != 1 || got.Names[0] != "z" {
		t.Fatalf("replaced fact = %+v", got)
	}
}

// get copies the struct (shallow — fact contents are immutable by
// convention): reassigning the returned value's fields must not change
// the stored fact, since in-process drivers share one set across
// packages.
func TestFactSetGetCopies(t *testing.T) {
	s := NewFactSet()
	s.export("p", &testFact{Names: []string{"a"}})
	var got testFact
	s.get("p", &got)
	got.Names = []string{"x", "y"}
	var again testFact
	s.get("p", &again)
	if len(again.Names) != 1 || again.Names[0] != "a" {
		t.Fatalf("stored fact mutated through get result: %+v", again)
	}
}

func TestFactsEncodeDecodeRoundTrip(t *testing.T) {
	s := NewFactSet()
	s.export("repro/internal/core", &testFact{Names: []string{"Worker", "Watcher"}})
	s.export("repro/internal/plan", &testFact{Names: nil})
	s.export("repro/internal/core", &otherFact{N: 3})

	data, err := s.EncodeFacts()
	if err != nil {
		t.Fatal(err)
	}
	// Determinism: identical sets built in a different order encode to
	// identical bytes (the build cache hashes vetx contents).
	s2 := NewFactSet()
	s2.export("repro/internal/core", &otherFact{N: 3})
	s2.export("repro/internal/plan", &testFact{Names: nil})
	s2.export("repro/internal/core", &testFact{Names: []string{"Worker", "Watcher"}})
	data2, err := s2.EncodeFacts()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("insertion order changed the encoded bytes")
	}

	dec := NewFactSet()
	if err := dec.DecodeFacts(data); err != nil {
		t.Fatal(err)
	}
	if dec.Len() != 3 {
		t.Fatalf("decoded Len = %d, want 3", dec.Len())
	}
	var got testFact
	if !dec.get("repro/internal/core", &got) || len(got.Names) != 2 || got.Names[1] != "Watcher" {
		t.Fatalf("decoded fact = %+v", got)
	}
}

// The pre-facts driver wrote zero-byte vetx files, and fact-free
// dependencies still do: empty input is a valid empty set.
func TestDecodeFactsEmpty(t *testing.T) {
	s := NewFactSet()
	if err := s.DecodeFacts(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.DecodeFacts([]byte{}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if err := s.DecodeFacts([]byte("not gob")); err == nil {
		t.Fatal("DecodeFacts accepted garbage")
	}
}

func TestFactSchemaDeterministic(t *testing.T) {
	a := &Analyzer{Name: "x", FactTypes: []Fact{(*testFact)(nil)}}
	b := &Analyzer{Name: "y", FactTypes: []Fact{(*otherFact)(nil)}}
	s1 := FactSchema([]*Analyzer{a, b})
	s2 := FactSchema([]*Analyzer{b, a})
	if s1 != s2 {
		t.Fatalf("schema depends on analyzer order:\n%s\n%s", s1, s2)
	}
	if s1 == FactSchema([]*Analyzer{a}) {
		t.Fatal("dropping a fact type did not change the schema")
	}
}
