// Package analysistest runs an analyzer over fixture packages under a
// testdata directory and checks its diagnostics against expectations
// embedded in the fixtures, in the style of
// golang.org/x/tools/go/analysis/analysistest (re-implemented here on
// the standard library only, since the repo builds offline).
//
// Fixtures live in testdata/src/<pkgpath>/*.go. Expectations are
// comments of the form
//
//	code() // want "regexp"
//	code() // want "regexp1" "regexp2"
//
// anchored to the line they appear on. A test fails if an expected
// diagnostic is missing, an unexpected diagnostic appears, or the
// fixture does not type-check. Fixture imports resolve first against
// sibling testdata/src packages (so a fixture can stub repo packages
// such as "prob"), then against the standard library, type-checked from
// GOROOT source.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each fixture package and applies a, comparing diagnostics
// against the // want expectations. pkgs are paths relative to
// dir/src (e.g. "a", "repro/internal/lrw").
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(strings.ReplaceAll(pkg, "/", "_"), func(t *testing.T) {
			t.Helper()
			run(t, dir, a, pkg)
		})
	}
}

func run(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	ld := newLoader(filepath.Join(dir, "src"))
	pkg, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %q: %v", pkgPath, err)
	}
	// Mirror the vet driver's fact flow: dependencies are analyzed first
	// (facts only — their diagnostics and // want comments are not
	// checked) so the target package can import what they export.
	// ld.order is complete-before order, dependencies ahead of
	// dependents, because loadUncached records a package only after its
	// imports resolved.
	facts := analysis.NewFactSet()
	if len(a.FactTypes) > 0 {
		for _, dep := range ld.order {
			if dep == pkgPath {
				continue
			}
			depPkg := ld.pkgs[dep].pkg
			depPkg.Facts = facts
			if _, err := analysis.Run(depPkg, []*analysis.Analyzer{a}); err != nil {
				t.Fatalf("running %s on dependency fixture %q: %v", a.Name, dep, err)
			}
		}
	}
	pkg.Facts = facts
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %q: %v", a.Name, pkgPath, err)
	}
	check(t, pkg.Fset, pkg.Files, diags)
}

// expectation is one // want "re" clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// parseWants extracts expectations from the fixture comments.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					quote := rest[0]
					if quote != '"' && quote != '`' {
						t.Fatalf("%s:%d: malformed want clause %q", posn.Filename, posn.Line, rest)
					}
					end := strings.IndexByte(rest[1:], quote)
					if end < 0 {
						t.Fatalf("%s:%d: unterminated want pattern %q", posn.Filename, posn.Line, rest)
					}
					pat := rest[1 : 1+end]
					rest = strings.TrimSpace(rest[2+end:])
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", posn.Filename, posn.Line, pat, err)
					}
					wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, re: re, raw: pat})
				}
			}
		}
	}
	return wants
}

// check matches diagnostics against expectations one-to-one.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != posn.Filename || w.line != posn.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", posn.Filename, posn.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// loader type-checks fixture packages, resolving imports against sibling
// fixture packages first and the standard library second.
type loader struct {
	root   string // testdata/src
	fset   *token.FileSet
	pkgs   map[string]*pkgResult
	order  []string // fixture packages in complete-before (deps-first) order
	stdImp types.Importer
}

type pkgResult struct {
	pkg  *analysis.Package
	err  error
	busy bool
}

func newLoader(root string) *loader {
	ld := &loader{root: root, fset: token.NewFileSet(), pkgs: map[string]*pkgResult{}}
	ld.stdImp = importer.ForCompiler(ld.fset, "source", nil)
	return ld
}

// Import implements types.Importer over the fixture tree + stdlib.
func (ld *loader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(ld.root, filepath.FromSlash(path))); err == nil && fi.IsDir() {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return ld.stdImp.Import(path)
}

// load parses and type-checks one fixture package (memoized).
func (ld *loader) load(path string) (*analysis.Package, error) {
	if r, ok := ld.pkgs[path]; ok {
		if r.busy {
			return nil, fmt.Errorf("import cycle through fixture %q", path)
		}
		return r.pkg, r.err
	}
	r := &pkgResult{busy: true}
	ld.pkgs[path] = r
	r.pkg, r.err = ld.loadUncached(path)
	r.busy = false
	if r.err == nil {
		ld.order = append(ld.order, path)
	}
	return r.pkg, r.err
}

func (ld *loader) loadUncached(path string) (*analysis.Package, error) {
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return ld.fset.Position(files[i].Pos()).Filename < ld.fset.Position(files[j].Pos()).Filename
	})
	info := analysis.NewInfo()
	conf := &types.Config{Importer: ld, Error: func(error) {}}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %q: %v", path, err)
	}
	return &analysis.Package{Fset: ld.fset, Files: files, Pkg: tpkg, TypesInfo: info}, nil
}
