package a

import "sync"

type engine struct {
	mu    sync.Mutex
	state int
}

func (e *engine) Snapshot() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state
}

// Calling a locking method while holding the same mutex self-deadlocks.
func (e *engine) bad() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.Snapshot() // want "self-deadlocks"
}

// Releasing first is fine.
func (e *engine) goodAfterUnlock() int {
	e.mu.Lock()
	e.state++
	e.mu.Unlock()
	return e.Snapshot()
}

// The sanctioned pattern: delegate to an unexported *Locked variant.
func (e *engine) goodLocked() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked()
}

func (e *engine) snapshotLocked() int { return e.state }

// The callee's acquisition is found transitively.
func (e *engine) transitive() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.indirect() // want "self-deadlocks"
}

func (e *engine) indirect() { _ = e.Snapshot() }

// Goroutine bodies run on their own timeline; out of reach by design.
func (e *engine) spawn() {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() { _ = e.Snapshot() }()
}

type rw struct {
	mu sync.RWMutex
	n  int
}

func (r *rw) Read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}

// Recursive read-locking is prohibited by the sync docs: a queued
// writer between the two RLocks deadlocks both.
func (r *rw) badRead() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.Read() // want "self-deadlocks"
}

func (r *rw) goodRead() int {
	v := r.Read()
	r.mu.RLock()
	defer r.mu.RUnlock()
	return v + r.n
}
