// Package locksafe catches the self-deadlock pattern that the serving
// layer is one refactor away from: a method locks its receiver's
// sync.Mutex (or takes a write RWMutex lock) and then, with the lock
// still held, calls another method on the same receiver that acquires
// the same mutex. Go mutexes are not reentrant, so the nested Lock
// blocks forever — and because core.Engine and the server's app state
// serialize requests through those mutexes, one such call freezes the
// whole process, not just one request.
//
// The check is a lexical over-approximation per method body: Lock/RLock
// on a receiver mutex field marks it held; Unlock/RUnlock releases it;
// a deferred unlock keeps it held to the end of the body (correct — the
// defer runs at return). Calls to same-receiver methods while a mutex
// is held are reported if the callee (transitively) acquires that
// mutex. Function literals are skipped: a goroutine body runs after the
// caller releases the lock, so flagging it would be noise.
package locksafe

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var scopeDirs = []string{
	"internal/core",
	"internal/server",
}

var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "locksafe: no same-receiver method call that re-acquires a held mutex\n\n" +
		"Flags method calls made while the receiver's sync.Mutex/RWMutex is held when\n" +
		"the callee locks the same mutex; Go locks are not reentrant, so that call\n" +
		"deadlocks the process.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), scopeDirs...) {
		return nil
	}
	c := newChecker(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv != nil && fd.Body != nil {
				c.indexMethod(fd)
			}
		}
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv != nil && fd.Body != nil {
				c.checkMethod(fd)
			}
		}
	}
	return nil
}

type methodKey struct {
	recv *types.TypeName // receiver's base named type
	name string
}

type checker struct {
	pass    *analysis.Pass
	methods map[methodKey]*ast.FuncDecl
	// locksMemo caches which receiver mutex fields a method acquires
	// (directly or through same-receiver calls).
	locksMemo map[methodKey]map[string]bool
	busy      map[methodKey]bool
}

func newChecker(pass *analysis.Pass) *checker {
	return &checker{
		pass:      pass,
		methods:   map[methodKey]*ast.FuncDecl{},
		locksMemo: map[methodKey]map[string]bool{},
		busy:      map[methodKey]bool{},
	}
}

// recvTypeName resolves fd's receiver base type, unwrapping pointers.
func (c *checker) recvTypeName(fd *ast.FuncDecl) *types.TypeName {
	obj, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// recvIdent returns the receiver variable's object, or nil for
// anonymous receivers.
func (c *checker) recvIdent(fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return c.pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

func (c *checker) indexMethod(fd *ast.FuncDecl) {
	if tn := c.recvTypeName(fd); tn != nil {
		c.methods[methodKey{tn, fd.Name.Name}] = fd
	}
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// mutexOp decodes a call like recv.mu.Lock(): it returns the mutex
// field name and the method name, or ok=false.
func (c *checker) mutexOp(call *ast.CallExpr, recv types.Object) (field, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	inner, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := ast.Unparen(inner.X).(*ast.Ident)
	if !isID || c.pass.TypesInfo.Uses[id] != recv || recv == nil {
		return "", "", false
	}
	if !isMutexType(c.pass.TypesInfo.TypeOf(inner)) {
		return "", "", false
	}
	return inner.Sel.Name, sel.Sel.Name, true
}

// sameRecvCall decodes recv.Method(...) and returns the method name.
func (c *checker) sameRecvCall(call *ast.CallExpr, recv types.Object) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || recv == nil || c.pass.TypesInfo.Uses[id] != recv {
		return "", false
	}
	if _, isFn := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFn {
		return "", false
	}
	return sel.Sel.Name, true
}

// locks returns the set of receiver mutex fields key's method acquires,
// directly or via same-receiver calls (memoized; cycles contribute
// nothing, matching the traversal's fixed point).
func (c *checker) locks(key methodKey) map[string]bool {
	if got, ok := c.locksMemo[key]; ok {
		return got
	}
	if c.busy[key] {
		return nil
	}
	fd, ok := c.methods[key]
	if !ok {
		return nil
	}
	c.busy[key] = true
	recv := c.recvIdent(fd)
	acquired := map[string]bool{}
	c.walk(fd.Body, func(call *ast.CallExpr) {
		if field, op, ok := c.mutexOp(call, recv); ok && (op == "Lock" || op == "RLock") {
			acquired[field] = true
		}
		if name, ok := c.sameRecvCall(call, recv); ok {
			for f := range c.locks(methodKey{key.recv, name}) {
				acquired[f] = true
			}
		}
	})
	c.busy[key] = false
	c.locksMemo[key] = acquired
	return acquired
}

// walk visits every CallExpr in body in lexical order, skipping
// function literals (their bodies execute on a different timeline).
func (c *checker) walk(body ast.Node, visit func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			visit(n)
		}
		return true
	})
}

// checkMethod simulates lock state lexically through fd's body and
// reports nested acquisitions via same-receiver calls.
func (c *checker) checkMethod(fd *ast.FuncDecl) {
	tn := c.recvTypeName(fd)
	recv := c.recvIdent(fd)
	if tn == nil || recv == nil {
		return
	}
	held := map[string]int{}
	deferred := map[string]bool{}
	var deferDepth int

	var scan func(n ast.Node)
	scan = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				// A deferred unlock releases at return, not here:
				// record it so the matching Unlock never decrements.
				deferDepth++
				scan(n.Call)
				deferDepth--
				return false
			case *ast.CallExpr:
				if field, op, ok := c.mutexOp(n, recv); ok {
					switch op {
					case "Lock", "RLock":
						held[field]++
					case "Unlock", "RUnlock":
						if deferDepth > 0 {
							deferred[field] = true
						} else if held[field] > 0 && !deferred[field] {
							held[field]--
						}
					}
					return true
				}
				if name, ok := c.sameRecvCall(n, recv); ok {
					callee := methodKey{tn, name}
					for field := range c.locks(callee) {
						if held[field] > 0 {
							c.pass.Reportf(n.Pos(),
								"%s calls %s.%s while holding %s.%s, and the callee acquires the same mutex; Go locks are not reentrant, so this self-deadlocks — hand off to an unexported *Locked variant instead",
								fd.Name.Name, recv.Name(), name, recv.Name(), field)
						}
					}
				}
			}
			return true
		})
	}
	scan(fd.Body)
}
