// Package errsentinel protects the core.Engine error contract. PR 1
// introduced sentinel errors (core.ErrInvalidArgument, core.ErrNotReady,
// core.ErrOverloaded, ...) that the server layer maps to HTTP status
// codes via errors.Is. That mapping only works if every fmt.Errorf that
// decorates an error on its way across the Engine boundary wraps with
// %w — formatting an error with %v or %s (or splicing in err.Error())
// flattens it to text and silently turns a 400/503 into a 500.
//
// The rule checks internal/core and internal/server: in a fmt.Errorf
// call, an argument whose static type is error must be matched to a %w
// verb, and err.Error() must not appear among the arguments.
package errsentinel

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/analysis"
)

var scopeDirs = []string{
	"internal/core",
	"internal/server",
}

var Analyzer = &analysis.Analyzer{
	Name: "errsentinel",
	Doc: "errsentinel: errors crossing the core.Engine boundary must wrap with %w\n\n" +
		"Flags fmt.Errorf calls in internal/core and internal/server that format an\n" +
		"error value with a verb other than %w, or splice in err.Error(); both break\n" +
		"the errors.Is sentinel mapping the HTTP layer depends on.",
	Run: run,
}

var errorType = types.Universe.Lookup("error").Type()

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), scopeDirs...) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
				return true
			}
			checkErrorf(pass, call)
			return true
		})
	}
	return nil
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	// err.Error() as any formatting argument flattens the chain
	// regardless of verb.
	for _, arg := range call.Args[1:] {
		if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr); ok &&
				sel.Sel.Name == "Error" && len(inner.Args) == 0 &&
				isErrorType(pass.TypesInfo.TypeOf(sel.X)) {
				pass.Reportf(arg.Pos(),
					"err.Error() flattens the error to text and breaks errors.Is sentinel matching across the Engine boundary; pass the error itself with %%w")
			}
		}
	}
	// Match verbs to arguments positionally.
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format string: out of reach
	}
	verbs := parseVerbs(constant.StringVal(tv.Value))
	args := call.Args[1:]
	for _, v := range verbs {
		if v.argIndex >= len(args) {
			break // malformed call; cmd/vet's printf check owns that
		}
		arg := args[v.argIndex]
		if v.verb != 'w' && isErrorType(pass.TypesInfo.TypeOf(arg)) {
			pass.Reportf(arg.Pos(),
				"error formatted with %%%c loses the sentinel chain; wrap with %%w so errors.Is keeps matching core sentinels", v.verb)
		}
	}
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Identical(t, errorType) {
		return true
	}
	// Concrete error implementations passed directly count too.
	return types.Implements(t, errorType.Underlying().(*types.Interface))
}

type verb struct {
	verb     rune
	argIndex int
}

// parseVerbs scans a printf format string and returns each verb with
// the index of the argument it consumes. '*' width/precision consume an
// argument each; %% and %w-less flags are handled; explicit argument
// indexes (%[1]d) are rare in this codebase and skipped conservatively.
func parseVerbs(format string) []verb {
	var out []verb
	arg := 0
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i >= len(rs) {
			break
		}
		if rs[i] == '%' {
			continue
		}
		// flags
		for i < len(rs) && (rs[i] == '#' || rs[i] == '+' || rs[i] == '-' || rs[i] == ' ' || rs[i] == '0') {
			i++
		}
		// explicit index: bail out, positional accounting is off
		if i < len(rs) && rs[i] == '[' {
			return out
		}
		// width
		for i < len(rs) && (rs[i] >= '0' && rs[i] <= '9') {
			i++
		}
		if i < len(rs) && rs[i] == '*' {
			arg++
			i++
		}
		// precision
		if i < len(rs) && rs[i] == '.' {
			i++
			for i < len(rs) && (rs[i] >= '0' && rs[i] <= '9') {
				i++
			}
			if i < len(rs) && rs[i] == '*' {
				arg++
				i++
			}
		}
		if i >= len(rs) {
			break
		}
		out = append(out, verb{verb: rs[i], argIndex: arg})
		arg++
	}
	return out
}
