package a

import (
	"errors"
	"fmt"
)

var sentinel = errors.New("boom")

// %v flattens the chain: errors.Is(result, sentinel) stops matching.
func bad(err error) error {
	return fmt.Errorf("search failed: %v", err) // want "wrap with %w"
}

func badS(err error) error {
	return fmt.Errorf("search failed: %s", err) // want "wrap with %w"
}

// err.Error() flattens regardless of verb.
func badErrorCall(err error) error {
	return fmt.Errorf("search failed: %s", err.Error()) // want `err\.Error\(\) flattens`
}

// %w preserves the sentinel chain.
func good(err error) error {
	return fmt.Errorf("search failed: %w", err)
}

// Non-error arguments take any verb.
func goodNonError(n int, name string) error {
	return fmt.Errorf("bad count %d for %q", n, name)
}

// Positional accounting: the error is the second argument here.
func mixed(err error, n int) error {
	return fmt.Errorf("step %d: %v", n, err) // want "wrap with %w"
}

func mixedGood(err error, n int) error {
	return fmt.Errorf("step %d: %w", n, err)
}

type myErr struct{}

func (myErr) Error() string { return "x" }

// Concrete error implementations count as errors.
func concrete() error {
	return fmt.Errorf("wrapped: %v", myErr{}) // want "wrap with %w"
}

// Star width consumes an argument; the error still maps to %w.
func starWidth(err error, w int) error {
	return fmt.Errorf("pad %*d: %w", w, 0, err)
}
