// Package poolsafe catches the sync.Pool GC-pinning class fixed in
// PR 4: a pooled scratch object that still references other objects
// when it returns to the pool keeps those objects reachable for as
// long as the pool holds the scratch — summaries, graphs and walk
// indexes pinned long after the request that used them. The fix was a
// dropRefs() that clears the aliasing fields before Put; this analyzer
// makes that discipline mechanical.
//
// For every p.Put(x) where p is a sync.Pool, the concrete pooled type
// is inspected for fields that can hold references to other objects:
// pointers, maps, channels, funcs, interfaces, and slices/arrays whose
// element type itself holds references or is a named struct from
// another package (a foreign-struct slice in a scratch arena is almost
// always an alias into data owned elsewhere — exactly how the search
// scratch pinned the summary corpus). Owned flat buffers ([]float64,
// []bool, [][]float64, slices of local plain structs) are the point of
// pooling and pass untouched.
//
// A risky field passes when the function containing the Put — or a
// same-package method it calls on the pooled value, resolved
// transitively (the dropRefs idiom) — clears it: assigns nil, assigns
// a fresh empty value, or calls clear() on it. The check is lexical
// and flow-insensitive, like the rest of the suite; a deliberate
// cross-call cache living in a pooled object documents itself with a
// //pitlint:ignore and a justification.
package poolsafe

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// scopeDirs: everything in the module. Pools appear today in
// internal/{search,lrw}; the rule is cheap and the bug class is
// repo-wide, so new pools are covered wherever they land.
var scopeDirs = []string{"internal", "cmd"}

var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc: "poolsafe: objects returned to a sync.Pool must not retain references to other objects\n\n" +
		"Flags pool.Put(x) when x's type holds pointer/map/interface fields or\n" +
		"foreign-struct slices that no dropRefs-style clear releases first; the pool\n" +
		"pins whatever the scratch still references (the PR-4 GC leak class).",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), scopeDirs...) {
		return nil
	}
	c := &checker{
		pass:    pass,
		methods: map[methodKey]*ast.FuncDecl{},
		cleared: map[methodKey]map[string]bool{},
		busy:    map[methodKey]bool{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv != nil && fd.Body != nil {
				if tn := recvTypeName(pass.TypesInfo, fd); tn != nil {
					c.methods[methodKey{tn, fd.Name.Name}] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

type methodKey struct {
	recv *types.TypeName
	name string
}

type checker struct {
	pass    *analysis.Pass
	methods map[methodKey]*ast.FuncDecl
	// cleared memoizes, per method, the receiver fields it clears
	// (directly or through same-receiver calls).
	cleared map[methodKey]map[string]bool
	busy    map[methodKey]bool
}

// recvTypeName resolves fd's receiver base named type.
func recvTypeName(info *types.Info, fd *ast.FuncDecl) *types.TypeName {
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// isSyncPool reports whether t is sync.Pool, unwrapping one pointer.
func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// holdsRefs reports whether a value of type t can reference another
// object the GC would otherwise free. home is the package owning the
// pooled type: slices of named structs from *other* packages count as
// aliases (see package doc). seen breaks recursive types.
func holdsRefs(t types.Type, home *types.Package, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Named:
		if _, isStruct := t.Underlying().(*types.Struct); isStruct {
			if t.Obj().Pkg() != nil && t.Obj().Pkg() != home {
				return true // foreign named struct: alias risk
			}
		}
		return holdsRefs(t.Underlying(), home, seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if holdsRefs(t.Field(i).Type(), home, seen) {
				return true
			}
		}
		return false
	case *types.Slice:
		return holdsRefs(t.Elem(), home, seen)
	case *types.Array:
		return holdsRefs(t.Elem(), home, seen)
	}
	// Basic types (strings included — pinning an immutable string is
	// benign) and everything else: no object references.
	return false
}

// riskyFields returns the names of st's fields that can hold object
// references.
func riskyFields(st *types.Struct, home *types.Package) []string {
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if holdsRefs(f.Type(), home, map[types.Type]bool{}) {
			out = append(out, f.Name())
		}
	}
	return out
}

// checkFunc scans fd for sync.Pool Put calls and verifies each one.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 {
			return true
		}
		if !isSyncPool(c.pass.TypesInfo.TypeOf(sel.X)) {
			return true
		}
		c.checkPut(fd, call)
		return true
	})
}

// checkPut validates one pool.Put(arg).
func (c *checker) checkPut(fd *ast.FuncDecl, call *ast.CallExpr) {
	arg := ast.Unparen(call.Args[0])
	t := c.pass.TypesInfo.TypeOf(arg)
	if t == nil {
		return
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	risky := riskyFields(st, named.Obj().Pkg())
	if len(risky) == 0 {
		return
	}

	// Which fields does the enclosing function clear, directly or via
	// method calls on the pooled value?
	var argObj types.Object
	if id, isIdent := arg.(*ast.Ident); isIdent {
		argObj = c.pass.TypesInfo.Uses[id]
	}
	clearedHere := c.clearedInFunc(fd.Body, argObj, named.Obj())

	var leaked []string
	for _, f := range risky {
		if !clearedHere[f] {
			leaked = append(leaked, f)
		}
	}
	if len(leaked) == 0 {
		return
	}
	c.pass.Reportf(call.Pos(),
		"%s returned to sync.Pool still references other objects through %s; the pool pins whatever they point at — clear them (dropRefs-style) before Put",
		named.Obj().Name(), joinFields(leaked))
}

func joinFields(fs []string) string {
	switch len(fs) {
	case 1:
		return "field " + fs[0]
	default:
		s := "fields " + fs[0]
		for _, f := range fs[1:] {
			s += ", " + f
		}
		return s
	}
}

// clearedInFunc collects fields of val (an object of pooled type tn)
// cleared anywhere in body: val.f = nil, val.f = T{} / empty literal,
// clear(val.f), or a method call val.m() whose body clears (resolved
// transitively).
func (c *checker) clearedInFunc(body ast.Node, val types.Object, tn *types.TypeName) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if f, ok := fieldOf(c.pass.TypesInfo, lhs, val); ok && i < len(n.Rhs) && isClearingValue(n.Rhs[i]) {
					out[f] = true
				}
			}
		case *ast.CallExpr:
			if f, ok := clearArg(c.pass.TypesInfo, n, val); ok {
				out[f] = true
			}
			if name, ok := methodCallOn(c.pass.TypesInfo, n, val); ok {
				for f := range c.methodClears(methodKey{tn, name}) {
					out[f] = true
				}
			}
		}
		return true
	})
	return out
}

// fieldOf decodes expr as val.f (possibly indexed: val.f[i] does not
// count — overwriting one element clears nothing) and returns f.
func fieldOf(info *types.Info, expr ast.Expr, val types.Object) (string, bool) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok || val == nil {
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || info.Uses[id] != val {
		return "", false
	}
	if _, isField := info.Uses[sel.Sel].(*types.Var); !isField {
		return "", false
	}
	return sel.Sel.Name, true
}

// isClearingValue reports whether rhs releases references: nil or an
// empty composite literal.
func isClearingValue(rhs ast.Expr) bool {
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		return rhs.Name == "nil"
	case *ast.CompositeLit:
		return len(rhs.Elts) == 0
	}
	return false
}

// clearArg decodes clear(val.f) and returns f.
func clearArg(info *types.Info, call *ast.CallExpr, val types.Object) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "clear" || len(call.Args) != 1 {
		return "", false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return "", false
	}
	return fieldOf(info, call.Args[0], val)
}

// methodCallOn decodes val.m(...) and returns m.
func methodCallOn(info *types.Info, call *ast.CallExpr, val types.Object) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || val == nil {
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || info.Uses[id] != val {
		return "", false
	}
	if _, isFn := info.Uses[sel.Sel].(*types.Func); !isFn {
		return "", false
	}
	return sel.Sel.Name, true
}

// methodClears returns the receiver fields key's method clears,
// transitively through same-receiver calls (memoized; cycles
// contribute nothing).
func (c *checker) methodClears(key methodKey) map[string]bool {
	if got, ok := c.cleared[key]; ok {
		return got
	}
	if c.busy[key] {
		return nil
	}
	fd, ok := c.methods[key]
	if !ok {
		return nil
	}
	c.busy[key] = true
	var recv types.Object
	if len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recv = c.pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
	}
	out := map[string]bool{}
	if recv != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if f, ok := fieldOf(c.pass.TypesInfo, lhs, recv); ok && i < len(n.Rhs) && isClearingValue(n.Rhs[i]) {
						out[f] = true
					}
				}
			case *ast.CallExpr:
				if f, ok := clearArg(c.pass.TypesInfo, n, recv); ok {
					out[f] = true
				}
				if name, ok := methodCallOn(c.pass.TypesInfo, n, recv); ok {
					for f := range c.methodClears(methodKey{key.recv, name}) {
						out[f] = true
					}
				}
			}
			return true
		})
	}
	c.busy[key] = false
	c.cleared[key] = out
	return out
}
