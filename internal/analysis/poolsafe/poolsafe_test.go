package poolsafe_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolsafe"
)

func TestPoolsafe(t *testing.T) {
	analysistest.Run(t, "testdata", poolsafe.Analyzer, "a")
}
