package a

import (
	"sync"

	"b"
)

type graphLike struct{ n int }

// scratch mixes owned flat buffers (fine to keep) with reference-holding
// fields (must be cleared before Put).
type scratch struct {
	buf     []float64  // owned buffer: never flagged
	grid    [][]byte   // nested flat buffer: never flagged
	flags   []bool     // owned buffer: never flagged
	cache   *graphLike // pointer: must clear
	items   []b.Item   // foreign-struct slice: alias risk, must clear
	lookups map[int]int
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

// dropRefs is the sanctioned idiom.
func (s *scratch) dropRefs() {
	s.cache = nil
	s.items = nil
	clear(s.lookups)
}

// reset delegates to dropRefs; transitive resolution must see through.
func (s *scratch) reset() {
	s.buf = s.buf[:0]
	s.dropRefs()
}

func goodDirectClear() {
	s := pool.Get().(*scratch)
	s.cache = nil
	s.items = nil
	s.lookups = nil
	pool.Put(s)
}

func goodDropRefs() {
	s := pool.Get().(*scratch)
	defer func() {
		s.dropRefs()
		pool.Put(s)
	}()
	_ = s.buf
}

func goodTransitive() {
	s := pool.Get().(*scratch)
	s.reset()
	pool.Put(s)
}

func badNoClear() {
	s := pool.Get().(*scratch)
	pool.Put(s) // want `still references other objects through fields cache, items, lookups`
}

func badPartialClear() {
	s := pool.Get().(*scratch)
	s.cache = nil
	pool.Put(s) // want `still references other objects through fields items, lookups`
}

// Truncating keeps the backing array (and everything it points at)
// alive: not a clear.
func badTruncate() {
	s := pool.Get().(*scratch)
	s.items = s.items[:0]
	s.cache = nil
	s.lookups = nil
	pool.Put(s) // want `still references other objects through field items`
}

// flat holds only owned buffers; Put needs no ceremony.
type flat struct {
	xs []float64
	ys []int32
	m  []uint32
}

var flatPool = sync.Pool{New: func() any { return new(flat) }}

func goodFlat() {
	f := flatPool.Get().(*flat)
	flatPool.Put(f)
}

// A deliberate cross-call cache suppresses with a justification.
func suppressedCache() {
	s := pool.Get().(*scratch)
	s.items = nil
	s.lookups = nil
	pool.Put(s) //pitlint:ignore poolsafe cache deliberately retained across calls; keys keep the allocation alive by design
}

// Non-pool Put methods are not confused with sync.Pool.
type store struct{}

func (store) Put(k int, v *scratch) {}

func goodOtherPut(st store, s *scratch) {
	st.Put(1, s)
}
