// Foreign package providing a named struct: slices of it inside a
// pooled scratch are treated as aliases into b-owned data.
package b

type Item struct {
	ID     int
	Weight float64
}
