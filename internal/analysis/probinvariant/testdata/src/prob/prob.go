// Package prob is a fixture stand-in for repro/internal/prob; the
// analyzer recognizes it by import-path suffix.
package prob

func Clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
