package a

import "prob"

// Raw float equality is rounding-sensitive.
func cmpEq(x, y float64) bool {
	return x == y // want "raw == between floats"
}

func cmpNeq(x, y float64) bool {
	return x != y // want "raw != between floats"
}

func cmpF32(x, y float32) bool {
	return x == y // want "raw == between floats"
}

func cmpZero(x float64) bool {
	return x == 0 // want "raw == between floats"
}

// Integer equality is exact and fine.
func cmpInt(x, y int) bool { return x == y }

// Ordering comparisons are the sanctioned restructuring.
func cmpOrder(x, y float64) bool { return !(x < y) && !(y < x) }

// Accumulating a probability product with no bound enforcement.
func accumulate(ws, ps []float64) float64 {
	var acc float64
	for i := range ws {
		acc += ws[i] * ps[i] // want "probability product"
	}
	return acc
}

// A function that routes through the prob package is trusted.
func accumulateChecked(ws, ps []float64) float64 {
	var acc float64
	for i := range ws {
		acc += ws[i] * ps[i]
	}
	return prob.Clamp01(acc)
}

// Plain sums carry no product and are fine.
func plainSum(xs []float64) float64 {
	var acc float64
	for _, x := range xs {
		acc += x
	}
	return acc
}

// Integer accumulations are out of reach.
func intAccum(xs []int) int {
	var acc int
	for _, x := range xs {
		acc += x * 2
	}
	return acc
}

// Mass that genuinely exceeds [0,1] documents itself.
func suppressedAccum(ws, ps []float64) float64 {
	var acc float64
	for i := range ws {
		acc += ws[i] * ps[i] //pitlint:ignore probinvariant expected-visits mass exceeds 1 by design
	}
	return acc
}
