package probinvariant_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/probinvariant"
)

func TestProbinvariant(t *testing.T) {
	analysistest.Run(t, "testdata", probinvariant.Analyzer, "a")
}
