// Package probinvariant guards the numeric hygiene of the paper's
// probability computations. Everything the engine ranks — random-walk
// visiting probabilities (§4), LRW stationary distributions (§3),
// propagation scores (§5) — is a float64 that is mathematically a
// probability. Two recurring bug shapes erode that:
//
//  1. raw == / != between floats ("p == 0", "a.Weight != b.Weight"),
//     which is sensitive to rounding noise and breaks comparator
//     transitivity, and
//  2. accumulating products of probabilities ("score += p * w") with no
//     bound enforcement, which lets rounding push mass above 1 or below
//     0 and then propagates garbage through top-k pruning thresholds.
//
// The fix lives in internal/prob: IsZero/ApproxEq for comparisons and
// Clamp01/NormalizeInPlace for accumulations. A function that already
// routes through the prob package is trusted on rule 2; a site where
// clamping would be mathematically wrong (mass genuinely exceeds 1)
// documents itself with //pitlint:ignore.
package probinvariant

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// scopeDirs: the numeric kernels plus the baselines they are validated
// against. Server/storage layers do not do float math on probabilities.
var scopeDirs = []string{
	"internal/lrw",
	"internal/rcl",
	"internal/search",
	"internal/propidx",
	"internal/randwalk",
	"internal/baselines",
	// prob itself is in scope: its IsZero wraps the one sanctioned
	// exact comparison under a //pitlint:ignore, keeping the
	// suppression path exercised by real code.
	"internal/prob",
}

var Analyzer = &analysis.Analyzer{
	Name: "probinvariant",
	Doc: "probinvariant: no raw float equality, no unchecked probability-product accumulation\n\n" +
		"Flags ==/!= between floats and `x += a*b`-style accumulations of probability\n" +
		"products in functions that never touch internal/prob's checked helpers.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), scopeDirs...) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	usesProb := referencesProb(pass.TypesInfo, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if (n.Op == token.EQL || n.Op == token.NEQ) &&
				isFloat(pass.TypesInfo.TypeOf(n.X)) && isFloat(pass.TypesInfo.TypeOf(n.Y)) {
				pass.Reportf(n.OpPos,
					"raw %s between floats is rounding-sensitive; use prob.IsZero / prob.ApproxEq (internal/prob) or restructure with an ordering comparison",
					n.Op)
			}
		case *ast.AssignStmt:
			if n.Tok != token.ADD_ASSIGN || len(n.Lhs) != 1 || usesProb {
				return true
			}
			if !isFloat(pass.TypesInfo.TypeOf(n.Lhs[0])) {
				return true
			}
			if hasFloatProduct(pass.TypesInfo, n.Rhs[0]) {
				pass.Reportf(n.Pos(),
					"accumulating a probability product with no bound enforcement lets rounding push mass outside [0,1]; route the result through prob.Clamp01 / prob.NormalizeInPlace, or suppress with //pitlint:ignore and a justification")
			}
		}
		return true
	})
}

// isFloat reports whether t's underlying type is a floating-point basic
// type (untyped float constants fold into these after conversion).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// hasFloatProduct reports whether e's subtree multiplies or divides
// floats — the shape of a probability-chain term.
func hasFloatProduct(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if (b.Op == token.MUL || b.Op == token.QUO) && isFloat(info.TypeOf(b.X)) && isFloat(info.TypeOf(b.Y)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// referencesProb reports whether body mentions the prob package — the
// signal that this function already routes its bounds through the
// checked helpers.
func referencesProb(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		path := pkgName.Imported().Path()
		if path == "prob" || len(path) > 5 && path[len(path)-5:] == "/prob" {
			found = true
			return false
		}
		return true
	})
	return found
}
