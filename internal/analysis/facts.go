// Cross-package facts. An analyzer that needs to see beyond the package
// under analysis (goroutinelife resolving `go pkg.Worker()` into another
// package's function body) exports a Fact while analyzing the defining
// package and imports it while analyzing the spawning one. Facts are
// keyed by (package path, concrete fact type) — package-level facts
// only; pitlint has no use for per-object fact granularity and the
// simpler key keeps the vet wire format small.
//
// In-process drivers (analysistest) share a FactSet across packages
// directly. The vet driver (cmd/pitlint) serializes the set with
// encoding/gob into the .vetx file cmd/go threads between vet
// invocations; see EncodeFacts/DecodeFacts. Fact types must therefore
// be pointers to gob-encodable structs, registered via
// Analyzer.FactTypes. For build-cache hygiene fact types should avoid
// maps (gob map ordering is nondeterministic); use sorted slices.
package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sort"
)

// Fact is a datum one package's analysis exports for importing
// packages. Implementations are pointers to gob-encodable structs; the
// AFact marker keeps arbitrary types from sneaking into the fact graph.
type Fact interface{ AFact() }

// factKey identifies one stored fact: package path + concrete type.
type factKey struct {
	path string
	typ  reflect.Type
}

// FactSet holds every package fact visible to one analysis run: facts
// imported from dependencies plus facts exported while running. The
// zero value is not usable; call NewFactSet.
type FactSet struct {
	m map[factKey]Fact
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet { return &FactSet{m: map[factKey]Fact{}} }

// export stores fact for the package at path, replacing any previous
// fact of the same concrete type.
func (s *FactSet) export(path string, fact Fact) {
	s.m[factKey{path, reflect.TypeOf(fact)}] = fact
}

// get copies the stored fact of *fact's concrete type for the package
// at path into fact, reporting whether one was present. fact must be a
// non-nil pointer.
func (s *FactSet) get(path string, fact Fact) bool {
	got, ok := s.m[factKey{path, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// Len reports the number of stored facts.
func (s *FactSet) Len() int { return len(s.m) }

// factRecord is the gob wire form of one fact. The concrete Fact type
// travels as a gob interface value, so every fact type must be
// registered (RegisterFactTypes) before encoding or decoding.
type factRecord struct {
	Path string
	Fact Fact
}

// RegisterFactTypes registers the fact prototypes of every analyzer
// with encoding/gob. Drivers call it once before touching the wire
// format; registering the same type twice is harmless.
func RegisterFactTypes(analyzers []*Analyzer) {
	seen := map[reflect.Type]bool{}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			if seen[t] {
				continue
			}
			seen[t] = true
			gob.Register(f)
		}
	}
}

// FactSchema returns a deterministic description of the fact types the
// analyzers exchange, for mixing into the driver's -V=full build-cache
// key: when a fact's shape changes, cached .vetx files written by the
// previous schema must not be reused.
func FactSchema(analyzers []*Analyzer) string {
	var parts []string
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f).Elem()
			desc := fmt.Sprintf("%s=%s{", a.Name, t.String())
			for i := 0; i < t.NumField(); i++ {
				desc += t.Field(i).Name + " " + t.Field(i).Type.String() + ";"
			}
			parts = append(parts, desc+"}")
		}
	}
	sort.Strings(parts)
	return "facts:" + fmt.Sprint(parts)
}

// EncodeFacts serializes every fact in s, sorted by (path, type name)
// so identical sets encode to identical bytes.
func (s *FactSet) EncodeFacts() ([]byte, error) {
	records := make([]factRecord, 0, len(s.m))
	for k, f := range s.m {
		records = append(records, factRecord{Path: k.path, Fact: f})
	}
	sort.Slice(records, func(i, j int) bool {
		if records[i].Path != records[j].Path {
			return records[i].Path < records[j].Path
		}
		return reflect.TypeOf(records[i].Fact).String() < reflect.TypeOf(records[j].Fact).String()
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(records); err != nil {
		return nil, fmt.Errorf("encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeFacts merges the facts serialized in data into s. An empty
// input is a valid empty set (the pre-facts driver wrote zero-byte
// .vetx files, and fact-free dependencies still do).
func (s *FactSet) DecodeFacts(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var records []factRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&records); err != nil {
		return fmt.Errorf("decoding facts: %w", err)
	}
	for _, r := range records {
		if r.Fact == nil {
			continue
		}
		s.export(r.Path, r.Fact)
	}
	return nil
}
