package unsafeslice_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/unsafeslice"
)

func TestUnsafeslice(t *testing.T) {
	analysistest.Run(t, "testdata", unsafeslice.Analyzer, "a", "repro/internal/storage")
}
