package a

import (
	"syscall"
	"unsafe" // want `import of unsafe outside internal/storage`
)

// Reinterpreting bytes by hand outside the storage views: the classic
// shape the analyzer exists to catch.
func badView(b []byte) []int32 {
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// A private mapping created outside the storage layer is never tied to
// the engine's drain-and-unmap lifecycle.
func badMap(fd int, size int) ([]byte, error) {
	return syscall.Mmap(fd, 0, size, syscall.PROT_READ, syscall.MAP_SHARED) // want `syscall.Mmap outside internal/storage`
}

func badUnmap(data []byte) error {
	return syscall.Munmap(data) // want `syscall.Munmap outside internal/storage`
}

// Other syscall use is not this analyzer's business.
func goodOtherSyscall() (int, error) {
	return syscall.Getpid(), nil
}
