// Fixture standing in for the real repro/internal/storage: the one
// package where unsafe reinterpretation and raw mappings are allowed,
// so none of these produce diagnostics.
package storage

import (
	"syscall"
	"unsafe"
)

func viewInt32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func mapFile(fd int, size int) ([]byte, error) {
	return syscall.Mmap(fd, 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmap(data []byte) error {
	return syscall.Munmap(data)
}
