// Package unsafeslice confines pointer reinterpretation to the one
// package audited for it. The v2 artifact path (internal/storage) reads
// index sections straight out of a read-only file mapping by
// reinterpreting raw bytes as typed slices — unsafe.Slice over an
// unsafe.Pointer — and owns the invariants that make that sound:
// element-size-multiple lengths, alignment checks, host-endianness
// gating, CRC-verified input, and a mapping whose lifetime is tied to
// the engine's drain gate. Scattered unsafe elsewhere would carry none
// of those guarantees, and a stray syscall.Mmap outside the storage
// layer would create a mapping no Close path ever unmaps (or worse, one
// whose backing slices outlive it — a use-after-munmap fault).
//
// The analyzer therefore flags, everywhere on production paths except
// internal/storage:
//
//   - importing unsafe (any use of unsafe.Pointer/Slice/SliceData…)
//   - calling syscall.Mmap or syscall.Munmap directly
//
// The fix is to route the access through internal/storage's typed
// views, or — for a genuinely new low-level subsystem — to carry a
// reviewed //pitlint:ignore directive naming the new invariant owner.
package unsafeslice

import (
	"go/ast"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// scopeDirs: module-wide; a stray unsafe is wrong on any production path.
var scopeDirs = []string{"internal", "cmd"}

// allowedSuffix is the one package whose views own the unsafe
// invariants. Matched by suffix so the fixture tree's module-prefixed
// path and the real repro/internal/storage both qualify.
const allowedSuffix = "internal/storage"

var Analyzer = &analysis.Analyzer{
	Name: "unsafeslice",
	Doc: "unsafeslice: unsafe and syscall.Mmap only inside internal/storage\n\n" +
		"Flags imports of unsafe and direct syscall.Mmap/Munmap calls outside\n" +
		"internal/storage, whose views own the zero-copy reinterpretation\n" +
		"invariants (size/alignment/endianness checks, CRC-verified input,\n" +
		"drain-gated unmap). Route byte reinterpretation through those views.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), scopeDirs...) {
		return nil
	}
	if pass.Pkg.Path() == allowedSuffix || strings.HasSuffix(pass.Pkg.Path(), "/"+allowedSuffix) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "unsafe" {
				pass.Reportf(imp.Pos(), "import of unsafe outside internal/storage; reinterpret bytes through the storage views, which own the size/alignment/lifetime invariants")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "syscall" {
				return true
			}
			switch fn.Name() {
			case "Mmap", "Munmap":
				pass.Reportf(call.Pos(), "syscall.%s outside internal/storage; mappings must be created and released by the storage layer so engine Close can drain and unmap them", fn.Name())
			}
			return true
		})
	}
	return nil
}
