# Developer entry points. `make check` is the full pre-merge gate:
# formatting, vet, the whole test suite under the race detector, and a
# one-shot pass over the tier-1 figure benchmarks so a broken experiment
# harness fails here instead of in a long benchmark run.

GO ?= go

.PHONY: all build test check fmt vet race bench-smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Tier-1 benchmark smoke: run the data_2k figure benchmarks exactly once
# (-benchtime 1x) to prove the experiment pipeline still executes.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig05TimeCostData2k|BenchmarkFig10PrecisionData2k' -benchtime 1x .

check: build fmt vet race bench-smoke
