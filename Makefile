# Developer entry points. `make check` is the full pre-merge gate:
# formatting, vet, the project's own static-analysis suite (pitlint), the
# whole test suite under the race detector, a one-shot pass over the
# tier-1 figure benchmarks so a broken experiment harness fails here
# instead of in a long benchmark run, and a vulnerability scan when
# govulncheck is installed.

GO ?= go
# Label under which `make bench` records its run in BENCH_PR5.json
# (e.g. `make bench BENCH_LABEL=mybranch` for a comparison run).
BENCH_LABEL ?= after

.PHONY: all help build test check fmt vet lint lint-audit lint-self vulncheck race bench bench-smoke chaos fuzz

all: check

help:
	@echo "make check       - full pre-merge gate (build fmt vet lint lint-self lint-audit race bench-smoke vulncheck)"
	@echo "make build       - compile all packages"
	@echo "make test        - run the test suite"
	@echo "make race        - run the test suite under the race detector"
	@echo "make fmt         - fail if any file needs gofmt"
	@echo "make vet         - go vet"
	@echo "make lint        - pitlint, the repo's own static-analysis suite"
	@echo "make lint-audit  - list every active //pitlint:ignore with its justification"
	@echo "make lint-self   - run pitlint over its own analyzers and driver"
	@echo "make bench       - online + offline load benchmark (cmd/pitperf); merges a"
	@echo "                   '$(BENCH_LABEL)' run into BENCH_PR5.json (BENCH_LABEL=...),"
	@echo "                   a cold-start run into BENCH_PR8.json, and a single-vs-sharded"
	@echo "                   run into BENCH_PR10.json"
	@echo "make bench-smoke - one-shot benchmark smoke: figure benchmarks plus the"
	@echo "                   search/core/rcl/lrw micro-benchmarks, a pitperf -smoke run,"
	@echo "                   a save/mmap-load/query cold-start round trip, and a 2-shard"
	@echo "                   scatter-gather round trip (pitperf -sharded + pitserve -shards 2)"
	@echo "make fuzz        - storage artifact-parser fuzzers for 10s per target"
	@echo "make chaos       - fault-injection suite under -race: internal/chaos plus the"
	@echo "                   planner/breaker chaos tests in core and server and the"
	@echo "                   streaming churn/soak tests in internal/stream"
	@echo "make vulncheck   - govulncheck when installed (best-effort)"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# pitlint: the repo's domain-specific analyzers (cancellation,
# determinism, probability hygiene, error wrapping, lock safety,
# goroutine lifecycle, pool/atomic/metric/timer hygiene), run through
# the standard vet driver. See README "Static analysis".
lint:
	$(GO) build -o bin/pitlint ./cmd/pitlint
	$(GO) vet -vettool=$(CURDIR)/bin/pitlint ./...

# Suppression audit: every active //pitlint:ignore with its file:line,
# analyzer list, and justification. Fails on malformed directives.
lint-audit:
	$(GO) run ./cmd/pitlint -why .

# Self-lint: the analyzers and their driver held to their own rules.
lint-self:
	$(GO) build -o bin/pitlint ./cmd/pitlint
	$(GO) vet -vettool=$(CURDIR)/bin/pitlint ./internal/analysis/... ./cmd/pitlint

# vulncheck is best-effort: govulncheck needs network access for its
# vulnerability database, so skip (without failing the gate) when the
# tool is not installed.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

race:
	$(GO) test -race ./...

# Chaos: the fault-injection harness (internal/chaos) and the end-to-end
# fidelity-ladder proofs that use it — breaker trip/recovery, zero
# unplanned 5xx under injected failure, goroutine hygiene on shutdown,
# and the streaming soak (a fault-injected summarizer on every swapped-in
# engine must never poison carried summaries) — always under the race
# detector, since the interesting bugs here are races between
# degradation, revalidation, swap and close.
chaos:
	$(GO) test -race ./internal/chaos/
	$(GO) test -race -run 'Chaos|Breaker|Planned|Stale|Reval|Soak|Churn' ./internal/plan/ ./internal/core/ ./internal/server/ ./internal/stream/ ./internal/shard/

# Online-path and offline-pipeline load benchmark (reproducible: fixed
# seed, fixed dataset shape). Records the run under $(BENCH_LABEL) in
# BENCH_PR5.json / BENCH_PR8.json and refuses to merge runs whose
# dataset configs differ.
bench:
	$(GO) run ./cmd/pitperf -label $(BENCH_LABEL) -out BENCH_PR5.json
	$(GO) run ./cmd/pitperf -cold -label $(BENCH_LABEL) -out BENCH_PR8.json
	$(GO) run ./cmd/pitperf -sharded -label $(BENCH_LABEL) -out BENCH_PR10.json

# Benchmark smoke: run the data_2k figure benchmarks and the online-path
# micro-benchmarks exactly once (-benchtime 1x), plus the pitperf smoke
# config, to prove both harnesses still execute. No timing value — just
# "does it run". The pitperf -cold -smoke run exercises the artifact
# round trip end to end: build → save both formats → mmap-load → query
# through the mapping. The pitserve -smoke run then serves real HTTP on
# ephemeral ports and fails unless /metrics exposes every instrumented
# layer's metric families (the obs packages themselves are covered under
# -race by `make race`, which runs ./...).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig05TimeCostData2k|BenchmarkFig10PrecisionData2k' -benchtime 1x .
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/search/ ./internal/core/ ./internal/rcl/ ./internal/lrw/
	$(GO) run ./cmd/pitperf -smoke -out /tmp/pitperf-smoke.json
	$(GO) run ./cmd/pitperf -cold -smoke -out /tmp/pitperf-cold-smoke.json
	$(GO) run ./cmd/pitperf -sharded -smoke -out /tmp/pitperf-sharded-smoke.json
	$(GO) run ./cmd/pitserve -smoke
	$(GO) run ./cmd/pitserve -smoke -shards 2

# Fuzz the artifact parsers: hostile bytes through both the gob and v2
# load paths must produce wrapped `storage:` errors, never a panic or an
# unbounded allocation. CI runs this budget on every push; longer local
# sessions just raise -fuzztime.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzLoad -fuzztime 10s ./internal/storage/

check: build fmt vet lint lint-self lint-audit race bench-smoke vulncheck
