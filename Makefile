# Developer entry points. `make check` is the full pre-merge gate:
# formatting, vet, the project's own static-analysis suite (pitlint), the
# whole test suite under the race detector, a one-shot pass over the
# tier-1 figure benchmarks so a broken experiment harness fails here
# instead of in a long benchmark run, and a vulnerability scan when
# govulncheck is installed.

GO ?= go

.PHONY: all build test check fmt vet lint vulncheck race bench-smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# pitlint: the repo's domain-specific analyzers (cancellation,
# determinism, probability hygiene, error wrapping, lock safety),
# run through the standard vet driver. See README "Static analysis".
lint:
	$(GO) build -o bin/pitlint ./cmd/pitlint
	$(GO) vet -vettool=$(CURDIR)/bin/pitlint ./...

# vulncheck is best-effort: govulncheck needs network access for its
# vulnerability database, so skip (without failing the gate) when the
# tool is not installed.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

race:
	$(GO) test -race ./...

# Tier-1 benchmark smoke: run the data_2k figure benchmarks exactly once
# (-benchtime 1x) to prove the experiment pipeline still executes.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig05TimeCostData2k|BenchmarkFig10PrecisionData2k' -benchtime 1x .

check: build fmt vet lint race bench-smoke vulncheck
